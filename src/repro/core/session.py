"""The unified reconstruction session (paper Fig. 1, one spine for every door).

REFILL's per-packet independence means one pipeline serves every workload —
batch, parallel, and live.  :class:`ReconstructionSession` owns that
pipeline: stream packet groups out of the merge layer, apply
:class:`RefillOptions` (including ``strip_times``) in exactly one place,
delegate execution to a pluggable
:class:`~repro.core.backends.ExecutionBackend`, diagnose, and record
metrics.  ``Refill``, ``ParallelRefill``, and ``IncrementalRefill`` are thin
compatibility shims over a session; ``analysis/pipeline.py`` and the CLI
construct sessions directly — so preflight, metrics/spans, and options
semantics are identical no matter which door you enter through.

Two driving modes:

- **one-shot** — :meth:`reconstruct` pulls batches of *complete* packet
  groups from a log collection (or a shard source, with ``stream=True``
  bounding how many groups are ever materialized) and pushes them through
  the backend;
- **streaming ingest** — :meth:`ingest` feeds *partial* evidence batches to
  an accumulating backend (live collection rounds); :meth:`refresh`
  re-derives exactly the dirtied flows and re-diagnoses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.core.backends import ExecutionBackend, ExecutionPlan, SerialBackend
from repro.core.backends.base import TemplateFactory
from repro.core.diagnosis import LossReport, classify_flow
from repro.core.event_flow import EventFlow
from repro.core.transition_algorithm import (
    PacketReconstructor,
    ReconstructorOptions,
    TemplateFor,
)
from repro.events.codec import intern_vocabulary
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import (
    Logs,
    PacketGroup,
    group_by_packet,
    iter_packet_groups,
)
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate, forwarder_template
from repro.obs.registry import get_registry
from repro.obs.spans import span

#: Sentinel distinguishing "no override" from an explicit ``None``.
_UNSET: object = object()

#: One evidence batch for streaming ingest: per-node logs or event lists.
IngestBatch = Union[Mapping[int, NodeLog], Mapping[int, Iterable[Event]]]

#: Version tag of :meth:`ReconstructionSession.export_state` payloads.
SESSION_STATE_VERSION = 1


@dataclass(frozen=True)
class RefillOptions:
    """Top-level configuration, normalized by the session in one place.

    Attributes
    ----------
    enable_intra / enable_inter:
        Forwarded to the reconstructor; ablation switches.
    strip_times:
        Drop timestamps from log events before inference, asserting that the
        reconstruction never depends on clocks (the paper's setting).  The
        returned flows then carry time only on events the caller re-attaches.
    """

    enable_intra: bool = True
    enable_inter: bool = True
    strip_times: bool = False

    def reconstructor_options(self) -> ReconstructorOptions:
        return ReconstructorOptions(
            enable_intra=self.enable_intra, enable_inter=self.enable_inter
        )


class ReconstructionSession:
    """One reconstruction run: merge → normalize → execute → diagnose.

    Parameters
    ----------
    template:
        An :class:`FsmTemplate` or per-node factory ``node -> FsmTemplate``.
        Defaults to the CTP forwarder.
    options:
        The :class:`RefillOptions`; ``strip_times`` is applied to every
        event *before* it reaches any backend, so pooled and incremental
        runs see exactly what a serial run sees.
    backend:
        The execution strategy (default :class:`SerialBackend`).
    template_factory:
        Zero-argument *module-level* template builder — required by
        :class:`~repro.core.backends.ProcessPoolBackend` (it must pickle by
        reference into workers).  When only the factory is given, the local
        template is built from it.
    delivery_node:
        Base-station node id for :meth:`diagnose` (``None`` disables
        delivery detection).
    batch_size:
        Packet groups per backend submission; in ``stream`` mode also the
        bound on simultaneously materialized groups.
    stream:
        Use the bounded two-phase grouping of
        :func:`repro.events.merge.iter_packet_groups` instead of one-pass
        full grouping — with a re-scannable shard source
        (:class:`repro.events.store.ShardedStore`) the corpus never has to
        fit in memory.
    """

    def __init__(
        self,
        template: FsmTemplate | TemplateFor | None = None,
        options: RefillOptions = RefillOptions(),
        *,
        backend: Optional[ExecutionBackend] = None,
        template_factory: Optional[TemplateFactory] = None,
        delivery_node: Optional[int] = None,
        batch_size: int = 256,
        stream: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if template is None:
            if template_factory is None:
                template_factory = forwarder_template
            template = template_factory()
        self.template: FsmTemplate | TemplateFor = template
        self.template_factory = template_factory
        self.options = options
        self.backend = backend if backend is not None else SerialBackend()
        self.delivery_node = delivery_node
        self.batch_size = batch_size
        self.stream = stream
        self.batches_ingested = 0
        self._started = False
        #: streaming-ingest caches (refresh keeps them current)
        self._flows: dict[PacketKey, EventFlow] = {}
        self._reports: dict[PacketKey, LossReport] = {}

    # ------------------------------------------------------------------ #
    # one-shot

    def reconstruct(self, logs: Logs) -> dict[PacketKey, EventFlow]:
        """Event flow of every packet mentioned anywhere in ``logs``.

        ``logs`` is an in-memory ``{node: NodeLog}`` mapping or any shard
        source with a re-iterable ``iter_logs()``.  Runs the backend's full
        lifecycle and releases it; the returned map is sorted by packet key
        regardless of the backend's completion order.
        """
        with span("reconstruct"):
            self._start_backend()
            flows: dict[PacketKey, EventFlow] = {}
            try:
                for batch in self._batches(logs):
                    for packet, flow in self.backend.submit(self._normalize(batch)):
                        flows[packet] = flow
                for packet, flow in self.backend.finish():
                    flows[packet] = flow
            finally:
                # release the backend even when merge/reconstruction raises
                # (the stress harness feeds sessions deliberately hostile
                # corpora and must be able to reuse the process afterwards)
                self.backend.close()
                self._started = False
            return {packet: flows[packet] for packet in sorted(flows)}

    def run(self, logs: Logs) -> "SessionResult":
        """:meth:`reconstruct` + :meth:`diagnose` in one call."""
        flows = self.reconstruct(logs)
        return SessionResult(flows=flows, reports=self.diagnose(flows))

    def reconstruct_group(
        self,
        packet: Optional[PacketKey],
        events_by_node: Mapping[int, Sequence[Event]],
    ) -> EventFlow:
        """One packet's flow from its per-node ordered events.

        The single-packet door (``Refill.reconstruct_packet``); applies the
        same normalization as the batch paths and runs in-process.
        """
        ((_, normalized),) = self._normalize(
            [(packet, {n: list(evs) for n, evs in events_by_node.items()})]
        )
        reconstructor = PacketReconstructor(
            self.template, packet, self.options.reconstructor_options()
        )
        return reconstructor.reconstruct(normalized)

    # ------------------------------------------------------------------ #
    # diagnosis (paper §V-B)

    def diagnose(
        self,
        flows: Mapping[PacketKey, EventFlow],
        *,
        delivery_node: object = _UNSET,
    ) -> dict[PacketKey, LossReport]:
        """Loss cause + position per packet, instrumented like every other
        stage: a ``diagnose`` span and a ``diagnose.packets`` counter."""
        node: Optional[int]
        if delivery_node is _UNSET:
            node = self.delivery_node
        else:
            node = delivery_node  # type: ignore[assignment]
        with span("diagnose"):
            counter = get_registry().counter("diagnose.packets")
            reports: dict[PacketKey, LossReport] = {}
            for packet, flow in flows.items():
                reports[packet] = classify_flow(flow, delivery_node=node)
                counter.inc()
            return reports

    # ------------------------------------------------------------------ #
    # streaming ingest (accumulating backends only)

    def ingest(self, batch: IngestBatch) -> set[PacketKey]:
        """Add a batch of per-node log segments; returns the dirtied packets.

        Within one node, segments must arrive in log order (collection
        preserves per-node order); across batches any interleaving is fine.
        Requires an accumulating backend
        (:class:`~repro.core.backends.IncrementalBackend`).
        """
        self._require_accumulating("ingest")
        self._start_backend()
        partial: dict[PacketKey, dict[int, list[Event]]] = {}
        for node, events in batch.items():
            for event in events:
                if event.packet is None:
                    continue
                partial.setdefault(event.packet, {}).setdefault(node, []).append(event)
        for _ in self.backend.submit(self._normalize(sorted(partial.items()))):
            pass  # accumulating backends defer flows to refresh()
        self.batches_ingested += 1
        return set(partial)

    def refresh(self) -> set[PacketKey]:
        """Re-reconstruct all dirty packets (and re-diagnose them); returns
        what was refreshed."""
        self._require_accumulating("refresh")
        self._start_backend()
        refreshed: dict[PacketKey, EventFlow] = {}
        for packet, flow in self.backend.finish():
            refreshed[packet] = flow
        if refreshed:
            self._flows.update(refreshed)
            self._reports.update(self.diagnose(refreshed))
        return set(refreshed)

    # queries (auto-refresh for convenience)

    def flow(self, packet: PacketKey) -> Optional[EventFlow]:
        if packet in self._dirty_set():
            self.refresh()
        return self._flows.get(packet)

    def flows(self) -> dict[PacketKey, EventFlow]:
        if self._dirty_set():
            self.refresh()
        return {p: self._flows[p] for p in sorted(self._flows)}

    def reports(self) -> dict[PacketKey, LossReport]:
        if self._dirty_set():
            self.refresh()
        return {p: self._reports[p] for p in sorted(self._reports)}

    @property
    def pending(self) -> int:
        """Dirty packets awaiting a refresh."""
        return len(self._dirty_set())

    def packets(self) -> list[PacketKey]:
        """Every packet the session has seen evidence or flows for."""
        backend_packets = getattr(self.backend, "packets", None)
        if callable(backend_packets):
            return backend_packets()
        return sorted(self._flows)

    # ------------------------------------------------------------------ #
    # resumable state (streaming ingest only)

    def export_state(self) -> dict[str, Any]:
        """JSON-compatible snapshot of a streaming-ingest session.

        Captures the backend's per-packet accumulations, the derived flow
        and report caches, and ``batches_ingested``.  The serve layer's
        checkpoint wraps this with its per-source ingest offsets; restoring
        the pair resumes a daemon without reprocessing the corpus.
        """
        self._require_accumulating("export_state")
        from repro.core.serialize import flow_to_dict, report_to_dict

        return {
            "version": SESSION_STATE_VERSION,
            "batches_ingested": self.batches_ingested,
            "backend": self.backend.export_state(),
            "flows": {
                str(p): flow_to_dict(f) for p, f in sorted(self._flows.items())
            },
            "reports": {
                str(p): report_to_dict(r) for p, r in sorted(self._reports.items())
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`export_state`; replaces any current state."""
        self._require_accumulating("restore_state")
        version = state.get("version")
        if version != SESSION_STATE_VERSION:
            raise ValueError(f"unsupported session state version {version!r}")
        from repro.core.serialize import flow_from_dict, report_from_dict

        self._start_backend()
        self.backend.restore_state(state["backend"])
        self.batches_ingested = int(state["batches_ingested"])
        self._flows = {
            PacketKey.parse(p): flow_from_dict(d) for p, d in state["flows"].items()
        }
        self._reports = {
            PacketKey.parse(p): report_from_dict(d)
            for p, d in state["reports"].items()
        }

    # ------------------------------------------------------------------ #
    # plumbing

    def preflight(self):
        """Static-analyze the session's template before reconstructing.

        Raises :class:`repro.check.runner.PreflightError` on model errors —
        a broken FSM silently corrupts every reconstructed flow.  Per-node
        factories pass without analysis (returns ``None``), matching
        :func:`repro.check.runner.preflight_check`.
        """
        from repro.check.runner import preflight_check  # avoid import cycle

        return preflight_check(self.template)

    def plan(self) -> ExecutionPlan:
        """The execution plan handed to the backend."""
        return ExecutionPlan(
            template=self.template,
            options=self.options.reconstructor_options(),
            template_factory=self.template_factory,
        )

    def _start_backend(self) -> None:
        if not self._started:
            if isinstance(self.template, FsmTemplate):
                # Pre-register the template's event vocabulary so the decode
                # fast path interns every expected label up front (one shared
                # str per label, bytes spellings included).
                intern_vocabulary(self.template.graph.events)
            self.backend.start(self.plan())
            self._started = True

    def _batches(self, logs: Logs):
        if self.stream:
            yield from iter_packet_groups(logs, batch_size=self.batch_size)
            return
        with span("reconstruct.merge"):
            groups = sorted(group_by_packet(logs).items())
        for i in range(0, len(groups), self.batch_size):
            yield groups[i : i + self.batch_size]

    def _normalize(
        self, groups: Sequence[tuple[Optional[PacketKey], dict[int, list[Event]]]]
    ) -> list[PacketGroup]:
        """Apply :class:`RefillOptions` event normalization — the ONE place
        ``strip_times`` happens, before any sharding or accumulation."""
        if not self.options.strip_times:
            return list(groups)  # type: ignore[arg-type]
        return [
            (
                packet,  # type: ignore[misc]
                {
                    node: [event.without_time() for event in events]
                    for node, events in events_by_node.items()
                },
            )
            for packet, events_by_node in groups
        ]

    def _dirty_set(self) -> set[PacketKey]:
        return getattr(self.backend, "dirty", set())

    def _require_accumulating(self, method: str) -> None:
        if not self.backend.accumulates:
            raise TypeError(
                f"ReconstructionSession.{method}() needs an accumulating "
                f"backend (e.g. IncrementalBackend); "
                f"{type(self.backend).__name__} processes complete groups only"
            )


@dataclass(frozen=True)
class SessionResult:
    """What :meth:`ReconstructionSession.run` hands back."""

    flows: dict[PacketKey, EventFlow]
    reports: dict[PacketKey, LossReport]


# ---------------------------------------------------------------------- #
# state partitioning (sharded-cluster checkpoints)


def split_session_state(
    state: Mapping[str, Any],
    parts: int,
    assign: Callable[[PacketKey], int],
) -> list[dict[str, Any]]:
    """Partition an :meth:`ReconstructionSession.export_state` payload.

    Per-packet independence (the paper's core property) makes session state
    trivially partitionable: flows, reports, and the backend's accumulated
    evidence are all keyed by packet, so each lands whole on
    ``assign(packet)``.  The one cross-packet scalar, ``batches_ingested``,
    is not per-packet at all — it goes to part 0, and cluster-level
    consumers only ever read the *sum* across shards.
    """
    from repro.core.backends.incremental import IncrementalBackend

    version = state.get("version")
    if version != SESSION_STATE_VERSION:
        raise ValueError(f"unsupported session state version {version!r}")
    backend_parts = IncrementalBackend.split_state(state["backend"], parts, assign)
    out: list[dict[str, Any]] = [
        {
            "version": SESSION_STATE_VERSION,
            "batches_ingested": 0,
            "backend": backend_parts[i],
            "flows": {},
            "reports": {},
        }
        for i in range(parts)
    ]
    out[0]["batches_ingested"] = int(state["batches_ingested"])
    for field in ("flows", "reports"):
        for packet, payload in state[field].items():
            out[assign(PacketKey.parse(packet))][field][packet] = payload
    return out


def merge_session_states(states: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold disjoint per-shard session states back into one payload.

    Inverse of :func:`split_session_state` (packets must be disjoint);
    ``batches_ingested`` is summed.  The merged payload is byte-identical
    to the export of an unsharded session holding the same evidence — keys
    are re-sorted the way :meth:`ReconstructionSession.export_state` sorts
    them.
    """
    from repro.core.backends.incremental import IncrementalBackend

    merged: dict[str, Any] = {
        "version": SESSION_STATE_VERSION,
        "batches_ingested": 0,
        "backend": IncrementalBackend.merge_states([s["backend"] for s in states]),
        "flows": {},
        "reports": {},
    }
    for state in states:
        version = state.get("version")
        if version != SESSION_STATE_VERSION:
            raise ValueError(f"unsupported session state version {version!r}")
        merged["batches_ingested"] += int(state["batches_ingested"])
        merged["flows"].update(state["flows"])
        merged["reports"].update(state["reports"])
    for field in ("flows", "reports"):
        merged[field] = {
            str(packet): merged[field][str(packet)]
            for packet in sorted(PacketKey.parse(p) for p in merged[field])
        }
    return merged
