"""Incremental reconstruction over a live deployment — streaming door.

:class:`IncrementalRefill` is a thin compatibility shim over
:class:`~repro.core.session.ReconstructionSession` with an
:class:`~repro.core.backends.IncrementalBackend`: the dirty-set
accumulation lives in the backend, the refresh/diagnose loop (now with the
same ``diagnose`` span and counters as every other door) in the session.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backends import IncrementalBackend
from repro.core.diagnosis import LossReport
from repro.core.event_flow import EventFlow
from repro.core.session import IngestBatch, ReconstructionSession, RefillOptions
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate

__all__ = ["IncrementalRefill"]


class IncrementalRefill:
    """Accumulates log batches and maintains up-to-date flows."""

    def __init__(
        self,
        template: Optional[FsmTemplate] = None,
        options: RefillOptions = RefillOptions(),
        *,
        delivery_node: Optional[int] = None,
    ) -> None:
        self.delivery_node = delivery_node
        self._session = ReconstructionSession(
            template,
            options,
            backend=IncrementalBackend(),
            delivery_node=delivery_node,
        )

    # ------------------------------------------------------------------ #

    def ingest(self, batch: IngestBatch) -> set[PacketKey]:
        """Add a batch of per-node log segments; returns the dirtied packets.

        Within one node, segments must arrive in log order (collection
        preserves per-node order); across batches any interleaving is fine.
        """
        return self._session.ingest(batch)

    def refresh(self) -> set[PacketKey]:
        """Re-reconstruct all dirty packets; returns what was refreshed."""
        return self._session.refresh()

    # ------------------------------------------------------------------ #
    # queries (auto-refresh for convenience)

    def flow(self, packet: PacketKey) -> Optional[EventFlow]:
        return self._session.flow(packet)

    def flows(self) -> dict[PacketKey, EventFlow]:
        return self._session.flows()

    def reports(self) -> dict[PacketKey, LossReport]:
        return self._session.reports()

    @property
    def pending(self) -> int:
        """Dirty packets awaiting a refresh."""
        return self._session.pending

    @property
    def batches_ingested(self) -> int:
        return self._session.batches_ingested

    def packets(self) -> list[PacketKey]:
        return self._session.packets()
