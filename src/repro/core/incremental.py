"""Incremental reconstruction over a live deployment.

Logs arrive in batches (each CTP collection round delivers more chunks);
operators want diagnosis *now*, not at end-of-month.  The incremental
engine keeps per-packet event accumulations and re-derives flows only for
packets whose evidence changed — per-packet independence makes the dirty
set exact.

Re-running a packet's reconstruction from scratch (instead of resuming
engine state) is deliberate: new evidence can *precede* previously
processed events (logs are unsynchronized), so the transition algorithm's
ordering decisions must be revisited — a classic recompute-over-resume
trade, cheap because flows are tiny.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.core.diagnosis import LossReport, classify_flow
from repro.core.event_flow import EventFlow
from repro.core.refill import Refill, RefillOptions
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import FsmTemplate


class IncrementalRefill:
    """Accumulates log batches and maintains up-to-date flows."""

    def __init__(
        self,
        template: Optional[FsmTemplate] = None,
        options: RefillOptions = RefillOptions(),
        *,
        delivery_node: Optional[int] = None,
    ) -> None:
        self._refill = Refill(template, options) if template else Refill(options=options)
        self.delivery_node = delivery_node
        #: per packet, per node: ordered accumulated events
        self._events: dict[PacketKey, dict[int, list[Event]]] = {}
        self._flows: dict[PacketKey, EventFlow] = {}
        self._reports: dict[PacketKey, LossReport] = {}
        self._dirty: set[PacketKey] = set()
        self.batches_ingested = 0

    # ------------------------------------------------------------------ #

    def ingest(self, batch: Mapping[int, NodeLog] | Mapping[int, Iterable[Event]]) -> set[PacketKey]:
        """Add a batch of per-node log segments; returns the dirtied packets.

        Within one node, segments must arrive in log order (collection
        preserves per-node order); across batches any interleaving is fine.
        """
        dirtied: set[PacketKey] = set()
        for node, events in batch.items():
            for event in events:
                if event.packet is None:
                    continue
                per_node = self._events.setdefault(event.packet, {})
                per_node.setdefault(node, []).append(event)
                dirtied.add(event.packet)
        self._dirty |= dirtied
        self.batches_ingested += 1
        return dirtied

    def refresh(self) -> set[PacketKey]:
        """Re-reconstruct all dirty packets; returns what was refreshed."""
        refreshed = set()
        for packet in sorted(self._dirty):
            flow = self._refill.reconstruct_packet(packet, self._events[packet])
            self._flows[packet] = flow
            self._reports[packet] = classify_flow(flow, delivery_node=self.delivery_node)
            refreshed.add(packet)
        self._dirty.clear()
        return refreshed

    # ------------------------------------------------------------------ #
    # queries (auto-refresh for convenience)

    def flow(self, packet: PacketKey) -> Optional[EventFlow]:
        if packet in self._dirty:
            self.refresh()
        return self._flows.get(packet)

    def flows(self) -> dict[PacketKey, EventFlow]:
        if self._dirty:
            self.refresh()
        return dict(self._flows)

    def reports(self) -> dict[PacketKey, LossReport]:
        if self._dirty:
            self.refresh()
        return dict(self._reports)

    @property
    def pending(self) -> int:
        """Dirty packets awaiting a refresh."""
        return len(self._dirty)

    def packets(self) -> list[PacketKey]:
        return sorted(self._events)
