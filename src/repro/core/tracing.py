"""Per-packet tracing from event flows (paper §II, §V).

"With the event flow, the detailed behavior of the packet can be revealed,
e.g., the path of the packet, where the packet is lost and the occurrence of
loop for the packet" — this module extracts the hop path, retransmission
counts, loops and duplicate episodes from a reconstructed flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.events.event import EventType
from repro.core.event_flow import EventFlow


@dataclass(frozen=True, slots=True)
class Hop:
    """One forwarding step ``src -> dst`` of the packet's journey."""

    src: Optional[int]
    dst: Optional[int]
    #: True when the hop is only known through inferred events.
    inferred: bool

    def __str__(self) -> str:  # pragma: no cover - trivial
        left = "?" if self.src is None else str(self.src)
        right = "?" if self.dst is None else str(self.dst)
        return f"{left}->{right}"


@dataclass
class PacketTrace:
    """Reconstructed journey of one packet."""

    hops: list[Hop] = field(default_factory=list)
    #: Nodes in visit order (derived from the hop sequence).
    path: list[int] = field(default_factory=list)
    #: Distinct transmissions per (src, dst) pair, counting repeats.
    retransmissions: int = 0
    #: Duplicate-detection events observed.
    duplicates: int = 0
    #: True when some node appears more than once on the path.
    has_loop: bool = False
    #: Last node known to hold the packet.
    final_position: Optional[int] = None

    def path_string(self) -> str:
        return " -> ".join(str(n) for n in self.path) if self.path else "(empty)"


def trace_packet(flow: EventFlow) -> PacketTrace:
    """Extract the packet's journey from its event flow.

    Hops are taken from transmission events whose receive was (really or
    inferably) observed; the visit path starts at the first known holder.
    """
    trace = PacketTrace()
    seen_pairs: set[tuple[Optional[int], Optional[int]]] = set()
    last_holder: Optional[int] = None

    for entry in flow.entries:
        event = entry.event
        etype = event.etype
        if etype == EventType.GEN.value:
            _visit(trace, event.node)
            last_holder = event.node
        elif etype == EventType.RECV.value:
            hop = Hop(event.src, event.node, entry.inferred)
            trace.hops.append(hop)
            _visit(trace, event.node)
            last_holder = event.node
        elif etype == EventType.TRANS.value:
            pair = (event.src, event.dst)
            if pair in seen_pairs:
                trace.retransmissions += 1
            seen_pairs.add(pair)
            if event.src is not None:
                _visit(trace, event.src)
                last_holder = event.src
        elif etype == EventType.DUP.value:
            trace.duplicates += 1

    counts: dict[int, int] = {}
    for node in trace.path:
        counts[node] = counts.get(node, 0) + 1
    trace.has_loop = any(c > 1 for c in counts.values())
    trace.final_position = last_holder
    return trace


def _visit(trace: PacketTrace, node: Optional[int]) -> None:
    if node is None:
        return
    if not trace.path or trace.path[-1] != node:
        trace.path.append(node)
