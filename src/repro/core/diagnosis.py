"""Loss-cause diagnosis from event flows (paper §V-B, §V-C).

"We say the cause is received loss if the last event of the packet's event
flow is a received event" — the classifier anchors on the flow's *frontier*
(its happens-before-maximal events; with a chronologically merged log this
is exactly the last event, but it is also robust to interleavings the merge
cannot determine) and maps the anchor to a cause and a loss *position* (the
node where the packet got lost).

Two refinements the paper describes in prose:

- Among several frontier events, *possession* events (gen/recv/trans/dup/
  overflow/timeout — events that say where the packet physically is) win
  over confirmation events (acks of earlier hops), e.g. Table II case 4
  ends at the dangling ``2-3 trans`` even though a ``3-1 ack recvd`` is
  concurrent with it.
- An ack-anchored loss is a *received loss* when the receiver's own receive
  record survived (the packet demonstrably entered the node) and an *acked
  loss* when it had to be inferred (the hardware acked but the node never
  recorded the packet) — this is what splits the sink's losses into the
  received/acked bands of Figs. 5/6/9.

Delivery is detected from the base station having received the packet;
server outages are attributed upstream by the analysis layer (an operations
log of outage windows), matching the paper's order of attribution (§V-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.events.event import Event, EventType
from repro.core.event_flow import EventFlow

#: Event types that place the packet at a node (vs. confirm an earlier hop).
POSSESSION_EVENTS = frozenset(
    {
        EventType.GEN.value,
        EventType.RECV.value,
        EventType.TRANS.value,
        EventType.DUP.value,
        EventType.OVERFLOW.value,
        EventType.TIMEOUT.value,
    }
)


class LossCause(str, enum.Enum):
    """Outcome categories used throughout the evaluation (Figs. 5, 6, 9)."""

    #: Packet reached the base station.
    DELIVERED = "delivered"
    #: The packet died *inside* a node that demonstrably received it
    #: (task-post failure, component conflict, serial drop at the sink...).
    RECEIVED_LOSS = "received"
    #: The receiver hardware-acked the packet but never recorded receiving
    #: it: lost between the radio and the upper layers.
    ACKED_LOSS = "acked"
    #: Retransmission budget exhausted on a link.
    TIMEOUT_LOSS = "timeout"
    #: Flow ends at a duplicate detection (routing loops).
    DUP_LOSS = "duplicated"
    #: Receiver queue overflow.
    OVERFLOW_LOSS = "overflow"
    #: Base-station server outage window (attributed from the ops log).
    SERVER_OUTAGE = "server_outage"
    #: No usable anchor (a dangling transmission, or no events at all).
    UNKNOWN = "unknown"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class LossReport:
    """Diagnosis of one packet.

    ``position`` is the node the loss is attributed to (``None`` when
    unknown); ``anchor`` is the frontier event the classification rests on.
    """

    cause: LossCause
    position: Optional[int]
    anchor: Optional[Event] = None

    @property
    def lost(self) -> bool:
        return self.cause is not LossCause.DELIVERED


def classify_flow(flow: EventFlow, *, delivery_node: Optional[int] = None) -> LossReport:
    """Classify one packet's flow (paper §V-B.1 and the Table II discussion).

    Parameters
    ----------
    flow:
        The reconstructed event flow.
    delivery_node:
        Node id of the base station; a packet whose flow contains a receive
        at this node is delivered.  ``None`` disables delivery detection
        (useful for the synthetic examples).
    """
    if not flow.entries:
        return LossReport(LossCause.UNKNOWN, None, None)

    if delivery_node is not None:
        for entry in flow.entries:
            e = entry.event
            if e.node == delivery_node and e.etype == EventType.RECV.value:
                return LossReport(LossCause.DELIVERED, delivery_node, e)

    anchor_index = _anchor_index(flow)
    anchor = flow.entries[anchor_index].event
    etype = anchor.etype

    if etype == EventType.RECV.value:
        return LossReport(LossCause.RECEIVED_LOSS, anchor.node, anchor)
    if etype == EventType.ACK.value:
        position = anchor.dst if anchor.dst is not None else anchor.node
        cause = _ack_anchor_cause(flow, anchor_index, position)
        return LossReport(cause, position, anchor)
    if etype == EventType.TIMEOUT.value:
        return LossReport(LossCause.TIMEOUT_LOSS, anchor.node, anchor)
    if etype == EventType.DUP.value:
        return LossReport(LossCause.DUP_LOSS, anchor.node, anchor)
    if etype == EventType.OVERFLOW.value:
        return LossReport(LossCause.OVERFLOW_LOSS, anchor.node, anchor)
    if etype == EventType.GEN.value:
        # Generated but never observed leaving the origin: an in-node loss
        # at the origin (the application handed the packet over and it
        # vanished).
        return LossReport(LossCause.RECEIVED_LOSS, anchor.node, anchor)
    # A dangling trans (ack/timeout record lost): in flight, undetermined.
    return LossReport(LossCause.UNKNOWN, anchor.node, anchor)


def _anchor_index(flow: EventFlow) -> int:
    """The frontier entry the diagnosis anchors on.

    Possession events beat confirmation events; a frontier *timeout* is
    additionally suppressed when the same hop demonstrably arrived (an
    arrival event with the same sender/receiver pair exists) — an ack loss
    made the sender give up while the packet travelled on (§V-D5).
    """
    frontier = flow.maximal_entries()
    if not frontier:  # pragma: no cover - non-empty flows have a frontier
        return len(flow.entries) - 1
    arrivals = {
        (e.event.src, e.event.dst)
        for e in flow.entries
        if e.event.etype in (EventType.RECV.value, EventType.DUP.value, EventType.OVERFLOW.value)
    }
    transmitters = {e.event.src for e in flow.entries if e.event.etype == EventType.TRANS.value}
    possession = [
        i
        for i in frontier
        if flow.entries[i].event.etype in POSSESSION_EVENTS
        and not (
            flow.entries[i].event.etype == EventType.TIMEOUT.value
            and (flow.entries[i].event.src, flow.entries[i].event.dst) in arrivals
        )
    ]
    if possession:
        return max(possession)
    # Only confirmations left.  An ack whose receiver demonstrably forwarded
    # the packet (it transmitted somewhere in the flow) is a stale
    # confirmation of a passed hop, not a loss anchor.
    live = [
        i
        for i in frontier
        if not (
            flow.entries[i].event.etype == EventType.ACK.value
            and flow.entries[i].event.dst in transmitters
        )
    ]
    return max(live) if live else max(frontier)


def _ack_anchor_cause(flow: EventFlow, anchor_index: int, receiver: int) -> LossCause:
    """Cause when the frontier is an ack: read the receiver's disposition.

    Scanning backwards from the ack for the receiver's latest arrival-type
    event: a *real* receive means the packet demonstrably entered the node
    (received loss); an overflow means the radio acked what the queue
    dropped (overflow loss); a duplicate detection means the acked copy was
    discarded as a dup; an *inferred* receive means only the hardware ack
    proves reception (acked loss).
    """
    for i in range(anchor_index - 1, -1, -1):
        entry = flow.entries[i]
        event = entry.event
        if event.node != receiver:
            continue
        if event.etype == EventType.RECV.value:
            return LossCause.RECEIVED_LOSS if not entry.inferred else LossCause.ACKED_LOSS
        if event.etype == EventType.OVERFLOW.value:
            return LossCause.OVERFLOW_LOSS
        if event.etype == EventType.DUP.value:
            return LossCause.DUP_LOSS
    return LossCause.ACKED_LOSS
