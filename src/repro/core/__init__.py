"""REFILL core: connected inference engines and the transition algorithm.

This is the paper's primary contribution (§IV): per-node FSM inference
engines connected by intra-node and inter-node transitions, a recursive
event-processing algorithm that reconstructs the network-wide event flow and
infers lost events, plus the downstream consumers of the flow — loss
diagnosis (§V-B) and per-packet tracing.
"""

from repro.core.event_flow import EventFlow, FlowEntry
from repro.core.engine import EngineInstance
from repro.core.context import PacketContext
from repro.core.transition_algorithm import PacketReconstructor, ReconstructorOptions
from repro.core.session import ReconstructionSession, RefillOptions, SessionResult
from repro.core.backends import (
    ExecutionBackend,
    ExecutionPlan,
    IncrementalBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.core.refill import Refill
from repro.core.parallel import ParallelRefill
from repro.core.incremental import IncrementalRefill
from repro.core.diagnosis import LossCause, LossReport, classify_flow
from repro.core.tracing import PacketTrace, trace_packet
from repro.core.queries import (
    NetworkStats,
    PacketStats,
    estimate_delay,
    network_stats,
    packet_stats,
    retransmission_hotspots,
)
from repro.core.logging_advisor import (
    LabelAdvice,
    LoggingPlan,
    advise,
    advised_plan,
    apply_plan,
    full_plan,
)

__all__ = [
    "NetworkStats",
    "PacketStats",
    "estimate_delay",
    "network_stats",
    "packet_stats",
    "retransmission_hotspots",
    "LabelAdvice",
    "LoggingPlan",
    "advise",
    "advised_plan",
    "apply_plan",
    "full_plan",
    "EventFlow",
    "FlowEntry",
    "EngineInstance",
    "PacketContext",
    "PacketReconstructor",
    "ReconstructorOptions",
    "ReconstructionSession",
    "SessionResult",
    "ExecutionBackend",
    "ExecutionPlan",
    "SerialBackend",
    "ProcessPoolBackend",
    "IncrementalBackend",
    "make_backend",
    "Refill",
    "ParallelRefill",
    "IncrementalRefill",
    "RefillOptions",
    "LossCause",
    "LossReport",
    "classify_flow",
    "PacketTrace",
    "trace_packet",
]
