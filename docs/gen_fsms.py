#!/usr/bin/env python3
"""Regenerate docs/FSMS.md from the live FSM templates.

Run from the repository root:

    python docs/gen_fsms.py
"""

import pathlib

from repro.fsm.templates import (
    dissemination_templates,
    forwarder_template,
    query_templates,
)


def main() -> None:
    sections = []
    fw = forwarder_template()
    sections.append((
        "The CTP forwarder FSM (paper Fig. 2, Table I)",
        "One instance per (node, packet). Solid edges below are the normal\n"
        "transitions; the engine additionally derives the intra-node jumps "
        "listed\nin `bench_fig2_fsm_construction.py`'s output.",
        fw.graph.to_dot("forwarder"),
    ))
    dt = dissemination_templates(seeder=0)
    sections.append((
        "Dissemination seeder (paper Fig. 3b/d)",
        "Completion waits on every listed target (Peer.TARGETS).",
        dt(0).graph.to_dot("seeder"),
    ))
    sections.append(("Dissemination receiver", "", dt(1).graph.to_dot("receiver")))
    qt = query_templates(origin=0)
    sections.append((
        "Query flood (tree dissemination, Fig. 3a cascade)",
        "Hearing requires the parent to have FORWARDED; the origin starts at HEARD.",
        qt(1).graph.to_dot("query"),
    ))

    out = [
        "# FSM templates (generated)\n",
        "Rendered from the live templates via `TransitionGraph.to_dot()`;",
        "regenerate with `python docs/gen_fsms.py`.  Pipe any block through",
        "`dot -Tsvg` for a picture.\n",
    ]
    for title, blurb, dot in sections:
        out.append(f"## {title}\n")
        if blurb:
            out.append(blurb + "\n")
        out.append("```dot\n" + dot + "\n```\n")
    target = pathlib.Path(__file__).parent / "FSMS.md"
    target.write_text("\n".join(out))
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
