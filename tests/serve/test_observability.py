"""Telemetry surfaces of the daemon: HELLO trace metadata on the wire,
``/metrics`` content negotiation, ``/debug/trace``, request ids, and the
``--metrics-out`` / ``--trace-out`` shutdown dumps.

The invariant under test throughout: tracing is *metadata only*.  Trace ids
ride exclusively in the HELLO control line and the recorder — data lines
are untouched — so flows served with tracing enabled stay byte-identical
to the batch reference.
"""

import http.client
import json
import socket

import pytest

from repro.obs.promtext import parse_exposition
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import push_lines, push_store
from tests.serve.util import http_json, http_req, wait_ready

DATA = "node=1 type=send pkt=p1.1"


def _request(port, path, headers=None, method="GET"):
    """One request, returning ``(status, lower-cased headers, body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path, headers=headers or {})
        resp = conn.getresponse()
        got = {name.lower(): value for name, value in resp.getheaders()}
        return resp.status, got, resp.read().decode("utf-8")
    finally:
        conn.close()


def _talk(port: int, payload: bytes, replies: int) -> list[str]:
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        out = []
        with sock.makefile("rb") as rfile:
            for _ in range(replies):
                out.append(rfile.readline().decode().strip())
        return out


@pytest.fixture()
def server(tmp_path):
    config = ServeConfig(
        checkpoint_path=str(tmp_path / "cp.json"), flush_interval=0.05
    )
    with ServerThread(config) as thread:
        yield thread


class TestHelloTraceWire:
    def test_trace_metadata_is_accepted(self, server):
        replies = _talk(
            server.tcp_port,
            f"HELLO source=s1 trace=wire-1\n{DATA}\nBYE\n".encode(),
            replies=2,
        )
        assert replies == ["OK offset=0", "OK accepted=1"]

    def test_trace_is_optional_for_old_clients(self, server):
        replies = _talk(
            server.tcp_port, f"HELLO source=plain\n{DATA}\nBYE\n".encode(),
            replies=2,
        )
        assert replies == ["OK offset=0", "OK accepted=1"]

    def test_malformed_trace_gets_err_not_crash(self, server):
        too_long = "t" * 65
        replies = _talk(
            server.tcp_port,
            f"HELLO source=s2 trace={too_long}\n".encode(),
            replies=1,
        )
        assert replies[0].startswith("ERR")
        # daemon is still alive and talking
        replies = _talk(
            server.tcp_port, b"HELLO source=s2\nBYE\n", replies=2
        )
        assert replies == ["OK offset=0", "OK accepted=0"]

    def test_push_lines_mints_and_reports_its_trace(self, server):
        result = push_lines([DATA], port=server.tcp_port, source="minted")
        assert result.trace is not None and len(result.trace) == 16
        explicit = push_lines(
            [DATA], port=server.tcp_port, source="explicit", trace="my-trace"
        )
        assert explicit.trace == "my-trace"
        off = push_lines(
            [DATA], port=server.tcp_port, source="untraced", trace=False
        )
        assert off.trace is None


class TestMetricsNegotiation:
    def test_json_is_the_default(self, server):
        status, headers, body = _request(server.http_port, "/metrics")
        assert status == 200
        assert headers["content-type"] == "application/json"
        snapshot = json.loads(body)
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_accept_header_switches_to_prometheus(self, server):
        push_lines([DATA, DATA], port=server.tcp_port, source="prom")
        wait_ready(server.http_port)
        status, headers, body = _request(
            server.http_port, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        samples, types = parse_exposition(body)
        assert samples["serve_ingest_lines"][()] == 2.0
        assert types["serve_ingest_lines"] == "counter"
        # the readiness polls above landed in the request histogram
        assert types["serve_request_seconds"] == "summary"

    def test_query_param_requests_prometheus(self, server):
        status, headers, body = _request(
            server.http_port, "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        parse_exposition(body)  # must be well-formed exposition text


class TestDebugTrace:
    def test_records_appear_after_a_push(self, server):
        push_lines([DATA], port=server.tcp_port, source="dbg", trace="dbg-t1")
        wait_ready(server.http_port)
        status, body = http_json(server.http_port, "/debug/trace")
        assert status == 200
        assert body["returned"] == len(body["records"]) > 0
        assert body["recorded"] >= body["returned"]
        assert body["capacity"] == 1024
        names = {record["name"] for record in body["records"]}
        assert "serve.decode" in names

    def test_filters_narrow_to_one_trace(self, server):
        push_lines([DATA], port=server.tcp_port, source="dbg", trace="dbg-t2")
        wait_ready(server.http_port)
        _, body = http_json(
            server.http_port,
            "/debug/trace?trace=dbg-t2&kind=event&name=ingest.hello",
        )
        [record] = body["records"]
        assert record["kind"] == "event"
        assert record["trace"] == "dbg-t2"
        assert record["fields"]["source"] == "dbg"
        _, limited = http_json(server.http_port, "/debug/trace?limit=1")
        assert limited["returned"] == 1

    def test_bad_query_parameters_are_400(self, server):
        status, _ = http_req(server.http_port, "/debug/trace?limit=soon")
        assert status == 400
        status, _ = http_req(server.http_port, "/debug/trace?kind=mystery")
        assert status == 400


class TestRequestIds:
    def test_every_response_carries_a_distinct_request_id(self, server):
        _, first, _ = _request(server.http_port, "/healthz")
        _, second, _ = _request(server.http_port, "/healthz")
        assert len(first["x-request-id"]) == 8
        assert len(second["x-request-id"]) == 8
        assert first["x-request-id"] != second["x-request-id"]


class TestShutdownDumps:
    def test_metrics_and_trace_written_on_graceful_stop(self, tmp_path):
        metrics_path = tmp_path / "out" / "metrics.json"
        trace_path = tmp_path / "out" / "trace.jsonl"
        config = ServeConfig(
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
            metrics_out=str(metrics_path),
            trace_out=str(trace_path),
        )
        with ServerThread(config) as thread:
            push_lines(
                [DATA, DATA, DATA],
                port=thread.tcp_port,
                source="dump",
                trace="dump-trace",
            )
            wait_ready(thread.http_port)

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["serve.ingest.lines"] == 3
        # same contract as `refill analyze --metrics-out`: sorted-key
        # indented JSON plus one trailing newline
        assert metrics_path.read_text() == (
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )

        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert records
        assert {record["kind"] for record in records} <= {"span", "event"}
        decoded = [
            r for r in records
            if r["name"] == "serve.decode" and r.get("trace") == "dump-trace"
        ]
        assert decoded and all(r["status"] == "ok" for r in decoded)


class TestEquivalenceWithTracing:
    def test_traced_push_is_byte_identical_to_batch(
        self, store, batch_flows, tmp_path
    ):
        """The acceptance invariant: one trace spanning a full store replay
        changes nothing about the served flows."""
        config = ServeConfig(
            store=str(store),
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
        )
        with ServerThread(config) as thread:
            results = push_store(store, port=thread.tcp_port, trace=True)
            trace_ids = {r.trace for r in results.values()}
            assert len(trace_ids) == 1  # one trace spans the whole replay
            (trace_id,) = trace_ids
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
            _, traced = http_json(
                thread.http_port, f"/debug/trace?trace={trace_id}"
            )
        assert served.strip() == batch_flows
        assert traced["returned"] > 0
