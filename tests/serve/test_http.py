"""Query API surface: routes, status codes, payload shapes."""

import json

import pytest

from repro.serve import ServeConfig, ServerThread
from repro.serve.client import push_store
from tests.serve.util import http_json, http_req, wait_ready


@pytest.fixture(scope="module")
def server(store, tmp_path_factory):
    """One populated daemon for the whole module (read-only queries)."""
    tmp = tmp_path_factory.mktemp("http")
    config = ServeConfig(
        store=str(store),
        checkpoint_path=str(tmp / "cp.json"),
        flush_interval=0.05,
    )
    with ServerThread(config) as thread:
        push_store(store, port=thread.tcp_port)
        wait_ready(thread.http_port)
        yield thread


class TestProbes:
    def test_healthz(self, server):
        status, body = http_json(server.http_port, "/healthz")
        assert status == 200 and body == {"status": "ok"}

    def test_readyz_reports_detail(self, server):
        status, body = http_json(server.http_port, "/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["lag_lines"] == 0
        assert body["pending_packets"] == 0
        assert body["queued_batches"] == 0
        # pipeline-health gauges surface in the probe detail
        assert body["queue_saturation"] == 0.0
        assert body["lag_seconds"] == 0.0
        assert body["checkpoint_age_seconds"] >= 0.0


class TestQueries:
    def test_packets_lists_every_known_packet(self, server):
        _, body = http_json(server.http_port, "/packets")
        assert len(body["packets"]) > 0
        assert all(p.startswith("p") for p in body["packets"])

    def test_single_flow_matches_bulk_entry(self, server):
        _, packets = http_json(server.http_port, "/packets")
        key = packets["packets"][0]
        _, flows_body = http_req(server.http_port, "/flows")
        _, one_body = http_req(server.http_port, f"/flow/{key}")
        assert json.loads(flows_body)[key] == json.loads(one_body)

    def test_single_report_matches_bulk_entry(self, server):
        _, packets = http_json(server.http_port, "/packets")
        key = packets["packets"][-1]
        _, reports = http_json(server.http_port, "/reports")
        _, one = http_json(server.http_port, f"/report/{key}")
        assert reports[key] == one

    def test_summary_shape(self, server):
        _, summary = http_json(server.http_port, "/summary")
        assert summary["packets"] > 0
        assert 0 <= summary["lost"] <= summary["packets"]
        assert abs(sum(summary["cause_shares"].values()) - 100.0) < 1e-6
        assert summary["sources"] > 0
        assert "sink_split" in summary  # store metadata is configured

    def test_offsets_shape(self, server):
        _, offsets = http_json(server.http_port, "/offsets")
        assert offsets["offsets"] == offsets["received"]  # drained
        assert offsets["lines_ingested"] == sum(offsets["offsets"].values())

    def test_metrics_exposes_serve_and_engine_counters(self, server):
        _, snap = http_json(server.http_port, "/metrics")
        assert snap["counters"]["serve.ingest.lines"] > 0
        assert snap["counters"]["refill.packets"] > 0
        assert any(
            name.startswith("serve.requests") for name in snap["counters"]
        )
        assert any(
            name.startswith("serve.request.seconds")
            for name in snap["histograms"]
        )


class TestErrors:
    def test_unknown_route_is_404(self, server):
        status, body = http_json(server.http_port, "/nope")
        assert status == 404 and "error" in body

    def test_bad_packet_key_is_400(self, server):
        status, _ = http_req(server.http_port, "/flow/banana")
        assert status == 400

    def test_unknown_packet_is_404(self, server):
        status, _ = http_req(server.http_port, "/flow/p999999.999999")
        assert status == 404
        status, _ = http_req(server.http_port, "/report/p999999.999999")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _ = http_req(server.http_port, "/healthz", method="PUT")
        assert status == 405

    def test_get_on_post_route_is_404(self, server):
        status, _ = http_req(server.http_port, "/shutdown")
        assert status == 404


class TestCheckpointRoute:
    def test_post_checkpoint_writes_file(self, store, tmp_path):
        config = ServeConfig(
            store=str(store),
            checkpoint_path=str(tmp_path / "on-demand.json"),
            flush_interval=0.05,
        )
        with ServerThread(config) as thread:
            status, body = http_json(
                thread.http_port, "/checkpoint", method="POST"
            )
            assert status == 200
            assert (tmp_path / "on-demand.json").exists()
            assert body["packets"] == 0

    def test_post_checkpoint_without_path_is_409(self, tmp_path):
        config = ServeConfig(flush_interval=0.05)  # no store, no path
        with ServerThread(config) as thread:
            status, _ = http_json(thread.http_port, "/checkpoint", method="POST")
            assert status == 409
