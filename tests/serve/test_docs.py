"""Serve telemetry must be documented: metrics, routes, and CLI flags.

The source of truth is the code (`SERVE_METRIC_NAMES`, `ROUTES`); the docs
are held to it so an endpoint or gauge cannot ship undocumented — the same
pattern as the stress-oracle coverage test in ``tests/stress/test_docs.py``.
"""

import pathlib

from repro.serve.http import ROUTES
from repro.serve.server import SERVE_METRIC_NAMES

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"


def test_every_serve_metric_is_documented():
    doc = (DOCS / "OBSERVABILITY.md").read_text()
    missing = [name for name in SERVE_METRIC_NAMES if name not in doc]
    assert not missing, f"undocumented serve metrics: {missing}"


def test_every_route_is_documented():
    doc = (DOCS / "SERVING.md").read_text()
    missing = [route for route in ROUTES if route not in doc]
    assert not missing, f"undocumented routes: {missing}"


def test_telemetry_cli_flags_are_documented():
    doc = (DOCS / "SERVING.md").read_text()
    for flag in ("--metrics-out", "--trace-out", "--trace-capacity"):
        assert flag in doc, f"undocumented flag {flag}"


def test_debug_trace_filters_are_documented():
    doc = (DOCS / "SERVING.md").read_text()
    for param in ("`limit`", "`name`", "`trace`", "`kind`"):
        assert param in doc, f"undocumented /debug/trace filter {param}"
