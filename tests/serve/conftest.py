"""Shared fixtures for the serve-layer suite.

One small simulated store serves every test module (session scope — the
simulation is the expensive part), together with its batch reference: the
canonical flows JSON a ``refill analyze --backend incremental --flows-out``
run produces.  Byte equality against that string is the serve layer's
correctness contract.

``task_ledger`` (autouse) is the runtime complement of the static
``refill check --code`` rules CC002/CC005: every test in this suite
fails if an ``asyncio.run`` inside it had to cancel still-pending tasks
at loop teardown (a leaked task — the PR 5 shutdown-hang class) or left
a stream writer open.
"""

import asyncio
import asyncio.runners
import json
import time
import weakref

import pytest

from repro.cli import main
from repro.serve.shard import TASK_LEDGER_ENV


@pytest.fixture(autouse=True)
def task_ledger(monkeypatch, tmp_path):
    """Fail tests that leak asyncio tasks or unclosed stream writers.

    A task still pending when ``asyncio.run`` tears the loop down got
    cancelled *by the runner*, not by the code under test — exactly how
    the PR 5 leaked reader tasks hid until shutdown hung.  Writers are
    tracked via a WeakSet; any writer still alive after the test must at
    least have ``close()`` called (``is_closing``).

    The same check crosses the process boundary: ``TASK_LEDGER_ENV``
    points shard subprocesses (``--shards > 1`` clusters) at a directory
    where :func:`repro.serve.shard._install_child_task_ledger` reports
    leaks at *their* loop teardown; any report file collected after the
    test fails it.  Router tasks run in-process and are covered by the
    monkeypatched hook directly.
    """
    ledger_dir = tmp_path / "task-ledger"
    ledger_dir.mkdir()
    monkeypatch.setenv(TASK_LEDGER_ENV, str(ledger_dir))
    leaked: list[str] = []
    writers: "weakref.WeakSet[asyncio.StreamWriter]" = weakref.WeakSet()

    real_cancel_all = asyncio.runners._cancel_all_tasks

    def recording_cancel_all(loop):
        for task in asyncio.all_tasks(loop):
            if not task.done():
                coro = task.get_coro()
                name = getattr(coro, "__qualname__", repr(coro))
                leaked.append(f"task {task.get_name()} ({name})")
        real_cancel_all(loop)

    real_writer_init = asyncio.StreamWriter.__init__

    def tracking_writer_init(self, *args, **kwargs):
        real_writer_init(self, *args, **kwargs)
        writers.add(self)

    monkeypatch.setattr(asyncio.runners, "_cancel_all_tasks", recording_cancel_all)
    monkeypatch.setattr(asyncio.StreamWriter, "__init__", tracking_writer_init)
    yield
    assert not leaked, (
        "test leaked asyncio tasks (alive at loop teardown, cancelled by "
        f"the runner, not the code under test): {leaked}"
    )
    # The daemon thread may still be tearing down the server side of a
    # connection the test just dropped; give it a moment before calling
    # a still-open writer a leak.
    deadline = time.monotonic() + 2.0
    unclosed = [repr(w) for w in writers if not w.is_closing()]
    while unclosed and time.monotonic() < deadline:
        time.sleep(0.02)
        unclosed = [repr(w) for w in writers if not w.is_closing()]
    assert not unclosed, f"test left stream writers open: {unclosed}"
    child_reports = {
        report.name: json.loads(report.read_text())
        for report in sorted(ledger_dir.glob("shard-leaks-*.json"))
    }
    assert not child_reports, (
        f"shard subprocesses leaked asyncio tasks: {child_reports}"
    )


@pytest.fixture(scope="session")
def store(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "store"
    code = main(["simulate", "--nodes", "14", "--days", "1", "--seed", "11",
                 "--out", str(out)])
    assert code == 0
    return out


@pytest.fixture(scope="session")
def batch_flows(store, tmp_path_factory):
    """Canonical flows JSON from a batch run over the same store."""
    out = tmp_path_factory.mktemp("batch") / "flows.json"
    code = main(["analyze", "-q", "--logs", str(store), "--no-check",
                 "--backend", "incremental", "--flows-out", str(out)])
    assert code == 0
    return out.read_text().strip()
