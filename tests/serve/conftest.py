"""Shared fixtures for the serve-layer suite.

One small simulated store serves every test module (session scope — the
simulation is the expensive part), together with its batch reference: the
canonical flows JSON a ``refill analyze --backend incremental --flows-out``
run produces.  Byte equality against that string is the serve layer's
correctness contract.
"""

import pytest

from repro.cli import main


@pytest.fixture(scope="session")
def store(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "store"
    code = main(["simulate", "--nodes", "14", "--days", "1", "--seed", "11",
                 "--out", str(out)])
    assert code == 0
    return out


@pytest.fixture(scope="session")
def batch_flows(store, tmp_path_factory):
    """Canonical flows JSON from a batch run over the same store."""
    out = tmp_path_factory.mktemp("batch") / "flows.json"
    code = main(["analyze", "-q", "--logs", str(store), "--no-check",
                 "--backend", "incremental", "--flows-out", str(out)])
    assert code == 0
    return out.read_text().strip()
