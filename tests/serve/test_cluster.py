"""The sharded cluster's correctness contract.

The oracle is absolute: a ``--shards N`` cluster must serve the exact
bytes the single daemon serves, which are themselves the exact bytes a
batch ``refill analyze`` emits — including after a kill-and-restore cycle
through the cluster manifest.  Everything else here (v1 migration, shard
mismatch fail-fast, ``--print-ports`` parsing, the push ``--workers``
path) guards the operational edges around that contract.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

from repro.events.store import read_complete_lines
from repro.serve import (
    ServeConfig,
    ServerThread,
    ShardMismatchError,
    load_manifest,
    push_lines,
    push_store,
)
from repro.serve.ingest import tail_node_bind
from repro.serve.runner import read_printed_ports
from tests.serve.util import http_json, http_req, wait_ready

REPO = pathlib.Path(__file__).resolve().parents[2]


def _collect_bodies(http_port: int) -> dict[str, str]:
    return {
        path: http_req(http_port, path)[1]
        for path in ("/flows", "/reports", "/packets", "/summary")
    }


@pytest.fixture(scope="session")
def single_bodies(store):
    """The unsharded daemon's query bodies — the byte oracle for clusters."""
    config = ServeConfig(store=str(store), checkpoint_interval=0.0)
    with ServerThread(config) as running:
        push_store(store, port=running.tcp_port)
        wait_ready(running.http_port)
        return _collect_bodies(running.http_port)


class TestClusterByteIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_query_bodies_match_single_and_batch(
        self, store, batch_flows, single_bodies, tmp_path, shards
    ):
        config = ServeConfig(
            store=str(store),
            shards=shards,
            checkpoint_path=str(tmp_path / "ckpt.json"),
            checkpoint_interval=0.0,
        )
        with ServerThread(config) as running:
            push_store(store, port=running.tcp_port, workers=min(4, shards + 1))
            wait_ready(running.http_port)
            bodies = _collect_bodies(running.http_port)
            _, offsets = http_json(running.http_port, "/offsets")
            # single-packet routes hit the owning shard and come back
            # byte-identical too
            packets = json.loads(bodies["/packets"])["packets"]
            probe = packets[len(packets) // 2]
            flow_status, flow_body = http_req(
                running.http_port, f"/flow/{probe}"
            )
        assert bodies["/flows"].strip() == batch_flows
        assert bodies["/flows"] == single_bodies["/flows"]
        assert bodies["/reports"] == single_bodies["/reports"]
        assert bodies["/packets"] == single_bodies["/packets"]
        # batches_ingested counts ingest() calls, which depend on network
        # chunking (nondeterministic even unsharded) — everything else in
        # the summary is part of the contract
        summary = json.loads(bodies["/summary"])
        oracle = json.loads(single_bodies["/summary"])
        summary.pop("batches_ingested")
        oracle.pop("batches_ingested")
        assert summary == oracle
        assert flow_status == 200
        assert json.loads(flow_body) == json.loads(bodies["/flows"])[probe]
        assert offsets["lines_ingested"] == summary["lines_ingested"]

    def test_unknown_packet_404_routes_through_shard(self, store, tmp_path):
        config = ServeConfig(
            store=str(store), shards=2, checkpoint_path=None,
            checkpoint_interval=0.0,
        )
        with ServerThread(config) as running:
            wait_ready(running.http_port)
            status, body = http_json(running.http_port, "/flow/p999.12345")
        assert status == 404
        assert "p999.12345" in body["error"]

    def test_merged_metrics_have_shard_labels_and_summed_counters(
        self, store, tmp_path
    ):
        config = ServeConfig(
            store=str(store),
            shards=2,
            checkpoint_path=str(tmp_path / "ckpt.json"),
            checkpoint_interval=0.0,
        )
        with ServerThread(config) as running:
            push_store(store, port=running.tcp_port)
            wait_ready(running.http_port)
            _, snap = http_json(running.http_port, "/metrics")
            _, offsets = http_json(running.http_port, "/offsets")
        counters = snap["counters"]
        gauges = snap["gauges"]
        # shard ingest counters sum unlabeled to the routed total
        assert counters["serve.ingest.lines"] == offsets["lines_ingested"]
        # per-shard gauges are relabeled, router health gauges stay unlabeled
        for shard in (0, 1):
            assert gauges[f"serve.shard.up{{shard={shard}}}"] == 1.0
            assert f"serve.ingest.lag_lines{{shard={shard}}}" in gauges
        assert (
            gauges[f"serve.shard.lines{{shard=0}}"]
            + gauges[f"serve.shard.lines{{shard=1}}"]
            == offsets["lines_ingested"]
        )
        assert gauges["serve.ingest.lag_lines"] == 0.0


class TestClusterCheckpointLifecycle:
    def _serve_cluster(self, store, ckpt, shards, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--logs", str(store),
                "--port", "0", "--http-port", "0",
                "--shards", str(shards),
                "--checkpoint", str(ckpt),
                "--checkpoint-interval", "0",
                "--print-ports",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            cwd=str(REPO),
            start_new_session=True,  # so killpg() reaches the shard children
        )
        try:
            ports = read_printed_ports(proc.stdout, expect={"ingest", "http"})
        except Exception:
            proc.kill()
            proc.wait()
            raise
        return proc, ports["ingest"]["port"], ports["http"]["port"]

    @pytest.mark.parametrize("shards", [2, 4])
    def test_kill_and_restore_mid_ingest(
        self, store, batch_flows, tmp_path, shards
    ):
        """Push half, checkpoint, SIGKILL the whole process group, restart
        from the manifest, re-push everything: the resumed cluster sends
        only the tail and still serves the batch-identical bytes."""
        ckpt = tmp_path / "ckpt.json"
        proc, ingest, http = self._serve_cluster(store, ckpt, shards)
        try:
            half_counts = {}
            for shard_log in sorted(store.glob("node_*.log")):
                lines = read_complete_lines(shard_log)
                half = lines[: len(lines) // 2]
                half_counts[shard_log.name] = len(half)
                push_lines(
                    half,
                    port=ingest,
                    source=shard_log.name,
                    node=tail_node_bind(shard_log),
                )
            wait_ready(http)
            status, body = http_json(http, "/checkpoint", method="POST")
            assert status == 200
            assert body["epoch"] == 1
        finally:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait(timeout=30)

        manifest = load_manifest(ckpt)
        assert manifest.shards == shards
        assert manifest.lines_routed == sum(half_counts.values())

        proc, ingest, http = self._serve_cluster(store, ckpt, shards)
        try:
            results = push_store(store, port=ingest, workers=2)
            assert {s: r.skipped for s, r in results.items()} == half_counts
            assert all(r.sent > 0 for r in results.values())
            wait_ready(http)
            _, flows = http_req(http, "/flows")
            assert flows.strip() == batch_flows
        finally:
            status, _ = http_req(http, "/shutdown", method="POST")
            assert status == 202
            assert proc.wait(timeout=60) == 0

    def test_sigterm_then_restart_re_push_sends_zero(
        self, store, batch_flows, tmp_path
    ):
        """Graceful SIGTERM commits a final manifest; a restarted cluster
        resumes from it and a full re-push is a complete no-op."""
        ckpt = tmp_path / "ckpt.json"
        proc, ingest, http = self._serve_cluster(store, ckpt, shards=2)
        try:
            push_store(store, port=ingest)
            wait_ready(http)
        finally:
            proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
        total = sum(
            len(read_complete_lines(p)) for p in store.glob("node_*.log")
        )
        manifest = load_manifest(ckpt)
        assert manifest.lines_routed == total

        proc, ingest, http = self._serve_cluster(store, ckpt, shards=2)
        try:
            results = push_store(store, port=ingest)
            assert sum(r.sent for r in results.values()) == 0
            assert sum(r.skipped for r in results.values()) == total
            wait_ready(http)
            _, flows = http_req(http, "/flows")
            assert flows.strip() == batch_flows
        finally:
            status, _ = http_req(http, "/shutdown", method="POST")
            assert status == 202
            assert proc.wait(timeout=60) == 0


class TestClusterMigrationAndGuards:
    def test_v1_checkpoint_is_resharded_on_startup(
        self, store, batch_flows, tmp_path
    ):
        ckpt = tmp_path / "ckpt.json"
        single = ServeConfig(
            store=str(store),
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with ServerThread(single) as running:
            push_store(store, port=running.tcp_port)
            wait_ready(running.http_port)
        assert json.loads(ckpt.read_text())["version"] == 1

        cluster = ServeConfig(
            store=str(store),
            shards=2,
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with ServerThread(cluster) as running:
            assert running.server.restored
            results = push_store(store, port=running.tcp_port)
            assert sum(r.sent for r in results.values()) == 0
            wait_ready(running.http_port)
            _, flows = http_req(running.http_port, "/flows")
        assert flows.strip() == batch_flows
        manifest = load_manifest(ckpt)
        assert manifest.shards == 2
        assert manifest.epoch >= 1

    def test_shard_count_mismatch_fails_fast(self, store, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        two = ServeConfig(
            store=str(store),
            shards=2,
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with ServerThread(two) as running:
            push_store(store, port=running.tcp_port)
            wait_ready(running.http_port)
        assert load_manifest(ckpt).shards == 2

        three = ServeConfig(
            store=str(store),
            shards=3,
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with pytest.raises(RuntimeError) as excinfo:
            ServerThread(three).start()
        cause = excinfo.value.__cause__
        assert isinstance(cause, ShardMismatchError)
        assert "--shards 2" in str(cause)
        assert "reshard" in str(cause)

    def test_single_daemon_rejects_cluster_manifest(self, store, tmp_path):
        ckpt = tmp_path / "ckpt.json"
        two = ServeConfig(
            store=str(store),
            shards=2,
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with ServerThread(two) as running:
            push_store(store, port=running.tcp_port)
            wait_ready(running.http_port)

        single = ServeConfig(
            store=str(store),
            checkpoint_path=str(ckpt),
            checkpoint_interval=0.0,
        )
        with pytest.raises(RuntimeError) as excinfo:
            ServerThread(single).start()
        assert "--shards 2" in str(excinfo.value.__cause__)


class TestPrintedPorts:
    def test_read_printed_ports_skips_noise_and_stops_early(self):
        lines = iter(
            [
                "level=info logger=refill.serve event=serve.listening\n",
                json.dumps({"listener": "ingest", "transport": "tcp",
                            "host": "127.0.0.1", "port": 1234}) + "\n",
                "not json {\n",
                json.dumps({"listener": "http", "transport": "tcp",
                            "host": "127.0.0.1", "port": 5678}) + "\n",
                json.dumps({"listener": "shard0-http", "transport": "tcp",
                            "host": "127.0.0.1", "port": 9999}) + "\n",
            ]
        )
        ports = read_printed_ports(lines, expect={"ingest", "http"})
        assert ports["ingest"]["port"] == 1234
        assert ports["http"]["port"] == 5678
        # stopped as soon as the expected set was satisfied
        assert "shard0-http" not in ports
        assert "shard0-http" in next(lines)

    def test_read_printed_ports_raises_on_truncated_stream(self):
        with pytest.raises(ValueError, match="http"):
            read_printed_ports(
                [json.dumps({"listener": "ingest", "port": 1})],
                expect={"ingest", "http"},
            )

    def test_cli_emits_one_line_per_listener(self, store, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--logs", str(store),
                "--port", "0", "--http-port", "0",
                "--shards", "2",
                "--checkpoint", str(tmp_path / "ckpt.json"),
                "--checkpoint-interval", "0",
                "--print-ports",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            cwd=str(REPO),
            start_new_session=True,
        )
        try:
            ports = read_printed_ports(
                proc.stdout,
                expect={
                    "ingest", "http",
                    "shard0-ingest", "shard0-http",
                    "shard1-ingest", "shard1-http",
                },
            )
            for name, entry in ports.items():
                assert entry["transport"] == "tcp"
                assert entry["port"] > 0, name
            status, _ = http_req(ports["http"]["port"], "/shutdown", "POST")
            assert status == 202
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait(timeout=30)
