"""Framing and protocol primitives: LineAssembler, offsets, HELLO/BYE."""

import socket

import pytest

from repro.events.codec import LineAssembler
from repro.events.store import read_complete_lines
from repro.serve import ServeConfig, ServerThread
from repro.serve.protocol import (
    Hello,
    control_word,
    format_ok,
    parse_hello,
    parse_ok,
)


class TestLineAssembler:
    def test_reassembles_across_arbitrary_chunking(self):
        payload = b"alpha\nbeta\r\ngamma\n"
        for size in (1, 2, 3, 5, 100):
            assembler = LineAssembler()
            lines = []
            for i in range(0, len(payload), size):
                lines.extend(assembler.feed(payload[i : i + size]))
            assert lines == ["alpha", "beta", "gamma"]
            assert not assembler.partial

    def test_unterminated_tail_is_held_back(self):
        assembler = LineAssembler()
        assert assembler.feed(b"complete\npart") == ["complete"]
        assert assembler.partial
        assert assembler.feed(b"ial\n") == ["partial"]
        assert not assembler.partial

    def test_blank_lines_are_preserved_in_framing(self):
        # framing counts every terminated line; decoding skips blanks later
        assert LineAssembler().feed(b"\n\nx\n") == ["", "", "x"]

    def test_undecodable_bytes_are_replaced_not_raised(self):
        lines = LineAssembler().feed(b"ok\n\xff\xfe broken\n")
        assert len(lines) == 2 and "broken" in lines[1]


class TestReadCompleteLines:
    def test_excludes_trailing_partial_and_resumes_by_offset(self, tmp_path):
        file = tmp_path / "tail.log"
        file.write_text("one\ntwo\nthr")  # writer caught mid-append
        assert read_complete_lines(file) == ["one", "two"]
        file.write_text("one\ntwo\nthree\nfour\n")
        assert read_complete_lines(file, start_line=2) == ["three", "four"]

    def test_rejects_negative_offset(self, tmp_path):
        file = tmp_path / "x.log"
        file.write_text("a\n")
        with pytest.raises(ValueError):
            read_complete_lines(file, start_line=-1)


class TestControlLines:
    def test_hello_round_trip(self):
        hello = Hello(source="node_0007.log", node=7)
        assert parse_hello(hello.format()) == hello
        assert parse_hello("HELLO source=x") == Hello(source="x", node=None)

    @pytest.mark.parametrize("bad", [
        "HELLO", "HELLO node=3", "HELLO source=", "HELLO source=x extra",
        "HELLO source=x shade=9", "BYE",
    ])
    def test_malformed_hello_raises(self, bad):
        with pytest.raises(ValueError):
            parse_hello(bad)

    def test_hello_trace_round_trip(self):
        hello = Hello(source="s", node=2, trace="push-1:a.b_c")
        assert parse_hello(hello.format()) == hello
        # the key is optional — pre-trace clients never send it
        assert parse_hello("HELLO source=s").trace is None

    @pytest.mark.parametrize("bad", [
        "HELLO source=x trace=",
        "HELLO source=x trace=" + "t" * 65,
    ])
    def test_malformed_trace_raises(self, bad):
        with pytest.raises(ValueError):
            parse_hello(bad)

    def test_control_word_never_matches_data_lines(self):
        assert control_word("HELLO source=x") == "HELLO"
        assert control_word("BYE") == "BYE"
        assert control_word("node=3 type=send pkt=p1.3") is None
        assert control_word("") is None

    def test_bye_must_be_the_entire_line(self):
        """A garbled data line that merely starts with the token is data —
        honoring it would silently drop the rest of the client's stream."""
        assert control_word("BYE node=1 type=send pkt=p1.1") is None
        assert control_word("BYEBYE") is None
        assert control_word("BYE ") == "BYE"  # framing whitespace only

    def test_ok_round_trip_and_err(self):
        assert parse_ok(format_ok(offset=41)) == {"offset": "41"}
        assert parse_ok("OK") == {}
        with pytest.raises(ValueError):
            parse_ok("ERR no such source")
        with pytest.raises(ValueError):
            parse_ok("node=3 type=send")


class TestWireHandshake:
    """Raw-socket conversations against a live daemon."""

    @pytest.fixture()
    def server(self, tmp_path):
        config = ServeConfig(
            checkpoint_path=str(tmp_path / "cp.json"), flush_interval=0.05
        )
        with ServerThread(config) as thread:
            yield thread

    def _talk(self, port: int, payload: bytes, replies: int) -> list[str]:
        with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
            sock.sendall(payload)
            out = []
            with sock.makefile("rb") as rfile:
                for _ in range(replies):
                    out.append(rfile.readline().decode().strip())
            return out

    def test_hello_then_bye_reports_offset_and_accepted(self, server):
        replies = self._talk(
            server.tcp_port,
            b"HELLO source=s1\nnode=1 type=send pkt=p1.1\n\nBYE\n",
            replies=2,
        )
        assert replies[0] == "OK offset=0"
        # blank line counts: offsets are framed lines, not decoded events
        assert replies[1] == "OK accepted=2"
        replies = self._talk(
            server.tcp_port, b"HELLO source=s1\nBYE\n", replies=2
        )
        assert replies[0] == "OK offset=2"

    def test_malformed_hello_gets_err_not_crash(self, server):
        replies = self._talk(server.tcp_port, b"HELLO shade=9\n", replies=1)
        assert replies[0].startswith("ERR")
        # daemon is still alive and talking
        replies = self._talk(server.tcp_port, b"HELLO source=ok\nBYE\n", replies=2)
        assert replies == ["OK offset=0", "OK accepted=0"]

    def test_hello_only_valid_as_first_line(self, server):
        replies = self._talk(
            server.tcp_port,
            b"node=1 type=send pkt=p2.1\nHELLO source=late\nBYE\n",
            replies=1,
        )
        # the late HELLO is treated as a data line (counted, not honored)
        assert replies[0] == "OK accepted=2"

    def test_garbled_bye_prefix_line_does_not_end_stream(self, server):
        replies = self._talk(
            server.tcp_port,
            b"HELLO source=gbye\n"
            b"BYE node=1 type=send pkt=p4.1\n"  # damaged data line
            b"node=1 type=send pkt=p4.1\n"
            b"BYE\n",
            replies=2,
        )
        assert replies[0] == "OK offset=0"
        # both lines after HELLO were accepted; the damaged one is merely
        # counted corrupt by the tolerant decoder, not honored as control
        assert replies[1] == "OK accepted=2"

    def test_second_connection_for_active_source_is_rejected(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=30
        ) as first, first.makefile("rb") as rfile:
            first.sendall(b"HELLO source=dup\n")
            assert rfile.readline().strip() == b"OK offset=0"
            # a concurrent pusher would be handed the same offset and
            # double-ingest; it must be turned away while the first lives
            with socket.create_connection(
                ("127.0.0.1", server.tcp_port), timeout=30
            ) as second, second.makefile("rb") as rfile2:
                second.sendall(b"HELLO source=dup\n")
                assert rfile2.readline().startswith(b"ERR")
            first.sendall(b"node=1 type=send pkt=p5.1\nBYE\n")
            assert rfile.readline().strip() == b"OK accepted=1"
        # the source is released once its connection finishes
        replies = self._talk(server.tcp_port, b"HELLO source=dup\nBYE\n",
                             replies=2)
        assert replies[0] == "OK offset=1"
