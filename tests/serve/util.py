"""Tiny HTTP/socket helpers for the serve-layer tests."""

import http.client
import json
import time


def http_req(port: int, path: str, method: str = "GET") -> tuple[int, str]:
    """One request against a local daemon; returns ``(status, body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(method, path)
        resp = conn.getresponse()
        return resp.status, resp.read().decode("utf-8")
    finally:
        conn.close()


def http_json(port: int, path: str, method: str = "GET"):
    status, body = http_req(port, path, method)
    return status, json.loads(body)


def wait_ready(port: int, timeout: float = 30.0) -> None:
    """Poll ``/readyz`` until ingest is drained and flows are fresh."""
    deadline = time.monotonic() + timeout
    last = None
    # Tight polls at first so latency measurements aren't quantized to the
    # poll interval, backing off once the server is clearly still busy.
    delay = 0.002
    while time.monotonic() < deadline:
        try:
            status, last = http_req(port, "/readyz")
        except OSError:
            status = None
        if status == 200:
            return
        time.sleep(delay)
        delay = min(delay * 2, 0.01)
    raise TimeoutError(f"server not ready in {timeout}s: {last}")
