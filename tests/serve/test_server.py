"""The serve layer's correctness contract, end to end.

Every test here compares daemon output against the session-scoped
``batch_flows`` string — the canonical JSON a batch ``refill analyze
--backend incremental --flows-out`` produces over the same store.  The
contract is *byte identity*, including across a mid-ingest checkpoint
restore and across server restarts.
"""

import shutil

import pytest

from repro.events.store import read_complete_lines
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import push_lines, push_store
from repro.serve.ingest import tail_node_bind
from tests.serve.util import http_json, http_req, wait_ready


def _config(store, tmp_path, **overrides):
    defaults = dict(
        store=str(store),
        checkpoint_path=str(tmp_path / "checkpoint.json"),
        flush_interval=0.05,
        tail_interval=0.05,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestPushEquivalence:
    def test_full_push_is_byte_identical_to_batch(
        self, store, batch_flows, tmp_path
    ):
        with ServerThread(_config(store, tmp_path)) as thread:
            results = push_store(store, port=thread.tcp_port)
            assert sum(r.sent for r in results.values()) > 0
            wait_ready(thread.http_port)
            status, served = http_req(thread.http_port, "/flows")
        assert status == 200
        assert served.strip() == batch_flows

    def test_repush_sends_nothing_and_changes_nothing(
        self, store, batch_flows, tmp_path
    ):
        with ServerThread(_config(store, tmp_path)) as thread:
            push_store(store, port=thread.tcp_port)
            wait_ready(thread.http_port)
            again = push_store(store, port=thread.tcp_port)
            assert sum(r.sent for r in again.values()) == 0
            assert all(r.skipped > 0 for r in again.values())
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows

    def test_interleaved_partial_pushes_converge(
        self, store, batch_flows, tmp_path
    ):
        """Shards delivered in halves, interleaved — per-node order is all
        the reconstruction needs."""
        shards = sorted(store.glob("node_*.log"))
        with ServerThread(_config(store, tmp_path)) as thread:
            for shard in shards:
                lines = read_complete_lines(shard)
                push_lines(
                    lines[: len(lines) // 2],
                    port=thread.tcp_port,
                    source=shard.name,
                    node=tail_node_bind(shard),
                )
            # second halves ride the offset: push the whole file, the
            # server's HELLO reply skips what it already has
            results = push_store(store, port=thread.tcp_port)
            assert sum(r.skipped for r in results.values()) > 0
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows


class TestCheckpointRestart:
    def test_restart_resumes_without_reprocessing(
        self, store, batch_flows, tmp_path
    ):
        config = _config(store, tmp_path)
        with ServerThread(config) as thread:
            push_store(store, port=thread.tcp_port)
            wait_ready(thread.http_port)
        # graceful stop wrote a checkpoint; a new server adopts it
        with ServerThread(config) as thread:
            assert thread.server.restored
            again = push_store(store, port=thread.tcp_port)
            assert sum(r.sent for r in again.values()) == 0
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
            _, metrics = http_json(thread.http_port, "/metrics")
        assert served.strip() == batch_flows
        # nothing was reconstructed on the restarted server: the engine
        # never ran, so its packet counter never appeared
        assert metrics["counters"].get("refill.packets", 0) == 0

    def test_kill_and_restore_mid_ingest(self, store, batch_flows, tmp_path):
        """A checkpoint taken mid-ingest + client offsets reconstruct the
        full corpus exactly, even though the first server never saw the
        second half."""
        shards = sorted(store.glob("node_*.log"))
        config = _config(store, tmp_path)
        with ServerThread(config) as thread:
            for shard in shards:
                lines = read_complete_lines(shard)
                push_lines(
                    lines[: len(lines) // 2],
                    port=thread.tcp_port,
                    source=shard.name,
                    node=tail_node_bind(shard),
                )
            wait_ready(thread.http_port)
            status, _ = http_req(thread.http_port, "/checkpoint", method="POST")
            assert status == 200
            # freeze the mid-ingest checkpoint; the graceful-stop one that
            # follows is discarded, simulating a crash right after this point
            shutil.copy(
                tmp_path / "checkpoint.json", tmp_path / "mid-ingest.json"
            )
        shutil.copy(tmp_path / "mid-ingest.json", tmp_path / "checkpoint.json")

        with ServerThread(config) as thread:
            assert thread.server.restored
            results = push_store(store, port=thread.tcp_port)
            # the halves already checkpointed are skipped, the rest is sent
            assert sum(r.skipped for r in results.values()) > 0
            assert sum(r.sent for r in results.values()) > 0
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows


class TestOtherIngestDoors:
    def test_unix_socket_ingest(self, store, batch_flows, tmp_path):
        sock_path = str(tmp_path / "refill.sock")
        config = _config(store, tmp_path, unix_socket=sock_path)
        with ServerThread(config) as thread:
            push_store(store, unix_socket=sock_path)
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows

    def test_tailed_file_picks_up_completed_lines_only(
        self, store, batch_flows, tmp_path
    ):
        shards = sorted(store.glob("node_*.log"))
        live = tmp_path / "live"
        live.mkdir()
        copies = []
        for shard in shards:
            copy = live / shard.name
            text = shard.read_text()
            head, tail = text[: len(text) // 2], text[len(text) // 2 :]
            copy.write_text(head)  # typically ends mid-line
            copies.append((copy, tail))
        expected = {
            shard.name: len(read_complete_lines(shard)) for shard in shards
        }
        config = _config(
            store, tmp_path, tail=tuple(str(c) for c, _ in copies)
        )
        with ServerThread(config) as thread:
            for copy, tail in copies:
                with copy.open("a") as handle:
                    handle.write(tail)
            self._wait_tails(thread.http_port, expected)
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows

    @staticmethod
    def _wait_tails(port, expected, timeout=30.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, offsets = http_json(port, "/offsets")
            got = offsets["offsets"]
            if all(got.get(name, 0) >= want for name, want in expected.items()):
                return
            time.sleep(0.05)
        raise TimeoutError(f"tails never caught up: {offsets}")


class TestCollectToServer:
    def test_collector_door_matches_in_process_session(self, tmp_path):
        from repro.analysis.pipeline import default_loss_spec
        from repro.core.backends.incremental import IncrementalBackend
        from repro.core.serialize import dumps_canonical, flows_to_json
        from repro.core.session import ReconstructionSession
        from repro.lognet.collector import collect_into, collect_to_server
        from repro.simnet.scenarios import citysee, run_scenario

        sim = run_scenario(citysee(n_nodes=10, days=1, seed=5))
        spec = default_loss_spec(sim)
        local = ReconstructionSession(
            backend=IncrementalBackend(), delivery_node=sim.base_station_node
        )
        collect_into(local, sim.true_logs, spec, 99, rounds=3)

        config = ServeConfig(
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
            delivery_node=sim.base_station_node,
        )
        with ServerThread(config) as thread:
            collect_to_server(
                sim.true_logs, spec, 99, port=thread.tcp_port, rounds=3
            )
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
            # pushing the same collection again is a no-op (resumable source)
            result = collect_to_server(
                sim.true_logs, spec, 99, port=thread.tcp_port, rounds=3
            )
            del result
            _, offsets = http_json(thread.http_port, "/offsets")
        assert served.strip() == dumps_canonical(
            flows_to_json(local.flows())
        )
        assert offsets["offsets"]["collector"] == offsets["received"]["collector"]
