"""The daemon under hostile input: garbled corpora, broken peers, tiny
queues.  Reuses the stress harness's fault operators so "corrupt" means the
same thing here as in the fault-injection campaigns."""

import random
import shutil
import socket
import threading
import time

import pytest

from repro.cli import main
from repro.events.store import load_store, read_complete_lines
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import push_store
from repro.stress.faults import GarbleLines
from tests.serve.util import http_json, http_req, wait_ready


@pytest.fixture(scope="module")
def garbled_store(store, tmp_path_factory):
    """The shared store with ~20% of lines damaged GarbleLines-style."""
    out = tmp_path_factory.mktemp("garbled") / "store"
    shutil.copytree(store, out)
    GarbleLines(p=0.2).apply(out, random.Random(23))
    return out


@pytest.fixture(scope="module")
def garbled_batch_flows(garbled_store, tmp_path_factory):
    out = tmp_path_factory.mktemp("garbled-batch") / "flows.json"
    code = main(["analyze", "-q", "--logs", str(garbled_store), "--no-check",
                 "--backend", "incremental", "--flows-out", str(out)])
    assert code == 0
    return out.read_text().strip()


class TestGarbledCorpus:
    def test_garbled_push_matches_garbled_batch(
        self, garbled_store, garbled_batch_flows, tmp_path
    ):
        """Corrupt lines are counted and skipped identically on both doors —
        including lines whose node field was garbled into a *different valid
        node id*, which the shard binding drops just like the store loader."""
        config = ServeConfig(
            store=str(garbled_store),
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
        )
        with ServerThread(config) as thread:
            push_store(garbled_store, port=thread.tcp_port)
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
            _, offsets = http_json(thread.http_port, "/offsets")
        assert served.strip() == garbled_batch_flows
        batch_corrupt = sum(load_store(garbled_store).corrupt_lines.values())
        assert batch_corrupt > 0
        assert sum(offsets["corrupt_lines"].values()) == batch_corrupt

    def test_corrupt_lines_metric_is_exported(self, garbled_store, tmp_path):
        config = ServeConfig(
            store=str(garbled_store),
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
        )
        with ServerThread(config) as thread:
            push_store(garbled_store, port=thread.tcp_port)
            wait_ready(thread.http_port)
            _, metrics = http_json(thread.http_port, "/metrics")
        corrupt = [
            value for name, value in metrics["counters"].items()
            if name.startswith("codec.corrupt_lines")
        ]
        assert corrupt and sum(corrupt) > 0


class TestBrokenPeers:
    @pytest.fixture()
    def server(self, tmp_path):
        config = ServeConfig(
            checkpoint_path=str(tmp_path / "cp.json"), flush_interval=0.05
        )
        with ServerThread(config) as thread:
            yield thread

    def test_mid_line_disconnect_drops_fragment_only(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=30
        ) as sock:
            sock.sendall(
                b"HELLO source=flaky\n"
                b"node=1 type=send pkt=p1.1\n"
                b"node=1 type=ack pkt=p1."  # cut mid-line, no newline
            )
            with sock.makefile("rb") as rfile:
                assert rfile.readline().strip() == b"OK offset=0"
            # abrupt close: no BYE, unterminated fragment in flight
        wait_ready(server.http_port)
        _, offsets = http_json(server.http_port, "/offsets")
        assert offsets["offsets"] == {"flaky": 1}  # the complete line only
        status, _ = http_req(server.http_port, "/healthz")
        assert status == 200

    def test_resume_after_mid_line_disconnect(self, server):
        lines = [
            "node=2 type=gen pkt=p9.2",
            "node=2 type=send pkt=p9.2 dst=1",
            "node=2 type=ack pkt=p9.2",
        ]
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=30
        ) as sock:
            payload = lines[0] + "\n" + lines[1][:10]  # dies mid-second-line
            sock.sendall(b"HELLO source=retry\n" + payload.encode())
            with sock.makefile("rb") as rfile:
                assert rfile.readline().strip() == b"OK offset=0"
        wait_ready(server.http_port)

        from repro.serve.client import push_lines

        result = push_lines(lines, port=server.tcp_port, source="retry")
        assert result.skipped == 1 and result.sent == 2
        wait_ready(server.http_port)
        _, summary = http_json(server.http_port, "/summary")
        assert summary["lines_ingested"] == 3

    def test_garbage_bytes_never_kill_the_daemon(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.tcp_port), timeout=30
        ) as sock:
            sock.sendall(b"\x00\xff\xfe garbage ===\n" * 50 + b"\x00\x01")
        time.sleep(0.2)
        wait_ready(server.http_port)
        status, _ = http_req(server.http_port, "/healthz")
        assert status == 200
        _, summary = http_json(server.http_port, "/summary")
        assert summary["lines_ingested"] == 50


class TestShutdownUnderLoad:
    def test_shutdown_completes_with_idle_peers_and_full_queue(self, tmp_path):
        """Shutdown must not deadlock when (a) readers are parked in
        _enqueue() on a full 1-batch queue — the old sequence cancelled the
        only drainer first — and (b) idle ingest/HTTP connections are open,
        which from Python 3.12.1 would stall ``Server.wait_closed()``."""
        config = ServeConfig(
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
            ingest_queue_batches=1,
            ingest_batch_lines=1,
        )
        thread = ServerThread(config).start()

        def spam(port: int) -> None:
            try:
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=30
                ) as sock:
                    for _ in range(500):
                        sock.sendall(b"node=1 type=send pkt=p1.1\n" * 50)
            except OSError:
                pass  # reset mid-shutdown is the expected outcome

        idle_ingest = socket.create_connection(
            ("127.0.0.1", thread.tcp_port), timeout=30
        )
        idle_http = socket.create_connection(
            ("127.0.0.1", thread.http_port), timeout=30
        )
        pusher = threading.Thread(
            target=spam, args=(thread.tcp_port,), daemon=True
        )
        pusher.start()
        time.sleep(0.2)  # let the queue fill and a reader block on it
        try:
            thread.stop(timeout=15.0)  # raises TimeoutError on deadlock
        finally:
            idle_ingest.close()
            idle_http.close()
        pusher.join(timeout=15.0)
        assert not pusher.is_alive()
        assert (tmp_path / "cp.json").exists()


class TestBackpressure:
    def test_tiny_queue_throttles_but_completes(
        self, store, batch_flows, tmp_path
    ):
        """queue=1 batch of 8 lines: the producer is throttled through the
        TCP window, never deadlocked, and the result is still exact."""
        config = ServeConfig(
            store=str(store),
            checkpoint_path=str(tmp_path / "cp.json"),
            flush_interval=0.05,
            ingest_queue_batches=1,
            ingest_batch_lines=8,
        )
        with ServerThread(config) as thread:
            results = push_store(store, port=thread.tcp_port)
            total = sum(len(read_complete_lines(s))
                        for s in store.glob("node_*.log"))
            assert sum(r.sent for r in results.values()) == total
            wait_ready(thread.http_port)
            _, served = http_req(thread.http_port, "/flows")
        assert served.strip() == batch_flows
