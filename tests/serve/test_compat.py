"""The ``asyncio.timeout`` backport that keeps the daemon on Python 3.10.

The backport class is exercised directly on every interpreter so the 3.10
code path cannot rot on the 3.11+ lanes that develop it.
"""

import asyncio
import sys

import pytest

from repro.serve import _compat
from repro.serve._compat import _TimeoutBackport


class TestTimeoutBackport:
    def test_expired_wait_raises_builtin_timeout_error(self):
        async def main():
            async with _TimeoutBackport(0.01):
                await asyncio.Event().wait()

        with pytest.raises(TimeoutError):
            asyncio.run(main())

    def test_fast_body_passes_result_through(self):
        async def main():
            async with _TimeoutBackport(30.0):
                return 41 + 1

        assert asyncio.run(main()) == 42

    def test_body_exceptions_propagate_unchanged(self):
        async def main():
            async with _TimeoutBackport(30.0):
                raise KeyError("boom")

        with pytest.raises(KeyError):
            asyncio.run(main())

    def test_external_cancellation_is_not_swallowed(self):
        """A real cancel must come out as CancelledError, not TimeoutError —
        the daemon's shutdown path cancels tasks parked inside timeouts."""

        async def main():
            started = asyncio.Event()

            async def body():
                async with _TimeoutBackport(30.0):
                    started.set()
                    await asyncio.Event().wait()

            task = asyncio.create_task(body())
            await started.wait()
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(main())

    def test_timer_is_disarmed_on_clean_exit(self):
        """After a fast body, the pending timer must not cancel the task."""

        async def main():
            async with _TimeoutBackport(0.01):
                pass
            await asyncio.sleep(0.05)  # outlive the (disarmed) timer
            return "alive"

        assert asyncio.run(main()) == "alive"

    def test_requires_a_running_task(self):
        coro = _TimeoutBackport(1.0).__aenter__()
        with pytest.raises(RuntimeError):
            coro.send(None)


def test_module_exports_stdlib_on_modern_interpreters():
    if sys.version_info >= (3, 11):
        assert _compat.timeout is asyncio.timeout
    else:
        assert _compat.timeout is _TimeoutBackport
