"""Checkpoint format, atomic persistence, and session state round-trips."""

import json

import pytest

from repro.core.backends.incremental import IncrementalBackend
from repro.core.serialize import dumps_canonical, flows_to_json, reports_to_json
from repro.core.session import (
    ReconstructionSession,
    merge_session_states,
    split_session_state,
)
from repro.events.packet import PacketKey
from repro.events.store import load_store
from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    MANIFEST_VERSION,
    Checkpoint,
    ClusterManifest,
    gc_shard_files,
    load_checkpoint,
    load_manifest,
    merge_checkpoints,
    reshard_checkpoint,
    reshard_manifest,
    save_checkpoint,
    save_manifest,
    shard_checkpoint_path,
)
from repro.serve.sharding import shard_for_key, shard_for_line, shard_for_packet


def _session(store_dir, **kwargs):
    meta = load_store(store_dir).metadata
    return ReconstructionSession(
        backend=IncrementalBackend(),
        delivery_node=meta.base_station,
        **kwargs,
    )


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        checkpoint = Checkpoint(
            session_state={"version": 1, "flows": {}},
            offsets={"node_0001.log": 42},
            corrupt_lines={"node_0001.log": 3},
            lines_ingested=45,
        )
        path = save_checkpoint(tmp_path / "cp.json", checkpoint)
        assert load_checkpoint(path) == checkpoint

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "deep" / "cp.json"
        save_checkpoint(path, Checkpoint(session_state={}))
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        data = Checkpoint(session_state={}).to_json()
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_torn_file_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text('{"version": 1, "session": {')
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestSessionStateRoundTrip:
    def test_export_restore_preserves_flows_and_reports(self, store):
        loaded = load_store(store)
        session = _session(store)
        session.ingest(
            {node: list(log) for node, log in loaded.logs.items()}
        )
        session.refresh()
        state = session.export_state()

        restored = _session(store)
        restored.restore_state(state)
        assert dumps_canonical(flows_to_json(restored.flows())) == dumps_canonical(
            flows_to_json(session.flows())
        )
        assert dumps_canonical(
            reports_to_json(restored.reports())
        ) == dumps_canonical(reports_to_json(session.reports()))
        assert restored.batches_ingested == session.batches_ingested

    def test_restore_mid_ingest_then_continue(self, store):
        """Export with dirty packets pending, restore, finish ingest —
        results must match a straight-through run."""
        loaded = load_store(store)
        nodes = sorted(loaded.logs)
        half = len(nodes) // 2

        straight = _session(store)
        straight.ingest({n: list(loaded.logs[n]) for n in nodes})

        first = _session(store)
        first.ingest({n: list(loaded.logs[n]) for n in nodes[:half]})
        state = first.export_state()  # dirty set intentionally non-empty

        second = _session(store)
        second.restore_state(state)
        second.ingest({n: list(loaded.logs[n]) for n in nodes[half:]})
        assert dumps_canonical(flows_to_json(second.flows())) == dumps_canonical(
            flows_to_json(straight.flows())
        )

    def test_unsupported_state_version_raises(self, store):
        session = _session(store)
        with pytest.raises(ValueError, match="version"):
            session.restore_state({"version": 999})


class TestShardHash:
    def test_deterministic_and_stable(self):
        # golden values: the hash is part of the on-disk contract (manifest
        # shard files were partitioned with it), so it must never drift
        assert shard_for_key(0, 0, 4) == shard_for_key(0, 0, 4)
        golden = [shard_for_key(o, s, 4) for o, s in [(1, 1), (1, 2), (2, 1), (7, 99)]]
        assert golden == [shard_for_key(o, s, 4) for o, s in [(1, 1), (1, 2), (2, 1), (7, 99)]]

    def test_single_shard_is_always_zero(self):
        assert shard_for_key(123, 456, 1) == 0
        assert shard_for_line("garbage", 1) == 0

    def test_spreads_across_shards(self):
        seen = {
            shard_for_key(origin, seq, 4)
            for origin in range(8)
            for seq in range(64)
        }
        assert seen == {0, 1, 2, 3}

    def test_line_packet_and_key_forms_agree(self):
        packet = PacketKey(origin=3, seq=17)
        line = "node=3 type=send src=3 dst=0 pkt=p3.17 t=12"
        assert shard_for_line(line, 4) == shard_for_packet(packet, 4)
        assert shard_for_packet(packet, 4) == shard_for_key(3, 17, 4)

    def test_keyless_lines_go_to_shard_zero(self):
        assert shard_for_line("node=3 type=boot t=0", 4) == 0
        # a pkt= substring inside another token is not a packet key
        assert shard_for_line("node=3 type=x blobpkt=p1.2", 4) == shard_for_line(
            "node=3 type=x", 4
        )


def _store_checkpoint(store_dir) -> Checkpoint:
    loaded = load_store(store_dir)
    session = _session(store_dir)
    session.ingest({node: list(log) for node, log in loaded.logs.items()})
    session.refresh()
    return Checkpoint(
        session_state=session.export_state(),
        offsets={"node_0001.log": 42, "node_0002.log": 7},
        corrupt_lines={"node_0001.log": 1},
        lines_ingested=49,
    )


class TestClusterManifest:
    def test_round_trip(self, tmp_path):
        manifest = ClusterManifest(
            shards=2,
            epoch=3,
            offsets={"a.log": 10},
            lines_routed=10,
            shard_files=("cp.shard00.e3.json", "cp.shard01.e3.json"),
        )
        path = save_manifest(tmp_path / "cp.json", manifest)
        assert load_manifest(path) == manifest
        assert json.loads(path.read_text())["version"] == MANIFEST_VERSION

    def test_v1_file_is_not_a_manifest(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, Checkpoint(session_state={}))
        with pytest.raises(ValueError, match="single-shard"):
            load_manifest(path)

    def test_manifest_is_not_a_v1_checkpoint(self, tmp_path):
        path = save_manifest(
            tmp_path / "cp.json",
            ClusterManifest(shards=2, epoch=1, offsets={}, shard_files=()),
        )
        with pytest.raises(ValueError, match="--shards 2"):
            load_checkpoint(path)

    def test_shard_checkpoint_path_layout(self, tmp_path):
        path = shard_checkpoint_path(tmp_path / "refill-checkpoint.json", 3, 12)
        assert path.parent == tmp_path
        assert path.name == "refill-checkpoint.shard03.e12.json"

    def test_gc_removes_only_stale_epochs(self, tmp_path):
        manifest_path = tmp_path / "cp.json"
        keep = shard_checkpoint_path(manifest_path, 0, 2)
        stale = shard_checkpoint_path(manifest_path, 0, 1)
        other = tmp_path / "unrelated.json"
        for p in (keep, stale, other):
            p.write_text("{}")
        manifest = ClusterManifest(
            shards=1, epoch=2, offsets={}, shard_files=(keep.name,)
        )
        save_manifest(manifest_path, manifest)
        removed = gc_shard_files(manifest_path, manifest)
        assert removed == [stale]
        assert keep.exists() and other.exists() and not stale.exists()


class TestReshard:
    def test_split_then_merge_is_identity(self, store):
        checkpoint = _store_checkpoint(store)
        parts = reshard_checkpoint(checkpoint, 3)
        assert len(parts) == 3
        merged = merge_checkpoints(parts)
        assert merged.session_state == checkpoint.session_state
        assert merged.offsets == checkpoint.offsets
        assert merged.corrupt_lines == checkpoint.corrupt_lines
        assert merged.lines_ingested == checkpoint.lines_ingested

    def test_offsets_stay_on_shard_zero(self, store):
        checkpoint = _store_checkpoint(store)
        parts = reshard_checkpoint(checkpoint, 3)
        assert parts[0].offsets == checkpoint.offsets
        assert parts[0].lines_ingested == checkpoint.lines_ingested
        for part in parts[1:]:
            assert part.offsets == {}
            assert part.lines_ingested == 0

    def test_partition_follows_the_cluster_hash(self, store):
        checkpoint = _store_checkpoint(store)
        parts = reshard_checkpoint(checkpoint, 4)
        for index, part in enumerate(parts):
            for packet in part.session_state["flows"]:
                assert shard_for_packet(PacketKey.parse(packet), 4) == index

    def test_split_session_state_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            split_session_state({"version": 99}, 2, lambda p: 0)

    def test_merge_session_states_restores_canonical_order(self, store):
        checkpoint = _store_checkpoint(store)
        state = checkpoint.session_state
        parts = split_session_state(
            state, 2, lambda p: shard_for_packet(p, 2)
        )
        merged = merge_session_states(list(reversed(parts)))
        assert dumps_canonical(merged) == dumps_canonical(state)

    def test_reshard_manifest_offline(self, store, tmp_path):
        """The documented rebalancing runbook: stop, reshard, restart."""
        path = tmp_path / "cp.json"
        save_checkpoint(path, _store_checkpoint(store))  # v1 input works too
        manifest = reshard_manifest(path, 3)
        assert manifest.shards == 3
        assert load_manifest(path) == manifest
        files = [tmp_path / name for name in manifest.shard_files]
        assert all(f.exists() for f in files)
        merged = merge_checkpoints([load_checkpoint(f) for f in files])
        assert merged.session_state == _store_checkpoint(store).session_state

        # rebalance again, manifest → manifest, and check the old epoch's
        # files are gone
        second = reshard_manifest(path, 2)
        assert second.shards == 2
        assert second.epoch == manifest.epoch + 1
        remaining = sorted(p.name for p in tmp_path.glob("cp.shard*.json"))
        assert remaining == sorted(second.shard_files)
