"""Checkpoint format, atomic persistence, and session state round-trips."""

import json

import pytest

from repro.core.backends.incremental import IncrementalBackend
from repro.core.serialize import dumps_canonical, flows_to_json, reports_to_json
from repro.core.session import ReconstructionSession
from repro.events.store import load_store
from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def _session(store_dir, **kwargs):
    meta = load_store(store_dir).metadata
    return ReconstructionSession(
        backend=IncrementalBackend(),
        delivery_node=meta.base_station,
        **kwargs,
    )


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        checkpoint = Checkpoint(
            session_state={"version": 1, "flows": {}},
            offsets={"node_0001.log": 42},
            corrupt_lines={"node_0001.log": 3},
            lines_ingested=45,
        )
        path = save_checkpoint(tmp_path / "cp.json", checkpoint)
        assert load_checkpoint(path) == checkpoint

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "deep" / "cp.json"
        save_checkpoint(path, Checkpoint(session_state={}))
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        data = Checkpoint(session_state={}).to_json()
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_torn_file_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text('{"version": 1, "session": {')
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestSessionStateRoundTrip:
    def test_export_restore_preserves_flows_and_reports(self, store):
        loaded = load_store(store)
        session = _session(store)
        session.ingest(
            {node: list(log) for node, log in loaded.logs.items()}
        )
        session.refresh()
        state = session.export_state()

        restored = _session(store)
        restored.restore_state(state)
        assert dumps_canonical(flows_to_json(restored.flows())) == dumps_canonical(
            flows_to_json(session.flows())
        )
        assert dumps_canonical(
            reports_to_json(restored.reports())
        ) == dumps_canonical(reports_to_json(session.reports()))
        assert restored.batches_ingested == session.batches_ingested

    def test_restore_mid_ingest_then_continue(self, store):
        """Export with dirty packets pending, restore, finish ingest —
        results must match a straight-through run."""
        loaded = load_store(store)
        nodes = sorted(loaded.logs)
        half = len(nodes) // 2

        straight = _session(store)
        straight.ingest({n: list(loaded.logs[n]) for n in nodes})

        first = _session(store)
        first.ingest({n: list(loaded.logs[n]) for n in nodes[:half]})
        state = first.export_state()  # dirty set intentionally non-empty

        second = _session(store)
        second.restore_state(state)
        second.ingest({n: list(loaded.logs[n]) for n in nodes[half:]})
        assert dumps_canonical(flows_to_json(second.flows())) == dumps_canonical(
            flows_to_json(straight.flows())
        )

    def test_unsupported_state_version_raises(self, store):
        session = _session(store)
        with pytest.raises(ValueError, match="version"):
            session.restore_state({"version": 999})
