"""Unit tests for the SVG figure renderers."""

import xml.dom.minidom

import pytest

from repro.analysis.spatial import SpatialPoint
from repro.core.diagnosis import LossCause
from repro.vis.figures import (
    CAUSE_COLORS,
    render_scatter_svg,
    render_spatial_svg,
    render_stacked_days_svg,
)
from repro.vis.svg import Extent, SvgCanvas


def parses(svg: str) -> bool:
    xml.dom.minidom.parseString(svg)
    return True


class TestSvgCanvas:
    def test_extent_validation(self):
        with pytest.raises(ValueError):
            Extent(0, 0, 0, 1)
        with pytest.raises(ValueError):
            Extent(0, 1, 5, 5)

    def test_coordinate_mapping(self):
        canvas = SvgCanvas(200, 100, extent=Extent(0, 10, 0, 10), margin=10)
        assert canvas.px(0) == 10
        assert canvas.px(10) == 190
        # data y grows upward, screen y downward
        assert canvas.py(0) == 90
        assert canvas.py(10) == 10

    def test_document_valid(self):
        canvas = SvgCanvas(100, 100, extent=Extent(0, 1, 0, 1))
        canvas.title("t")
        canvas.axes(x_label="x", y_label="y")
        canvas.circle(0.5, 0.5, 3, fill="#123456")
        canvas.triangle(0.2, 0.2, 5, fill="red")
        canvas.line(0, 0, 1, 1)
        canvas.text(0.1, 0.9, "<escaped & safe>")
        svg = canvas.to_svg()
        assert parses(svg)
        assert "&lt;escaped" in svg

    def test_save(self, tmp_path):
        canvas = SvgCanvas(50, 50)
        path = tmp_path / "x.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")


class TestFigureRenderers:
    def test_scatter(self):
        points = [
            (0.0, 1, LossCause.ACKED_LOSS),
            (10.0, 5, LossCause.TIMEOUT_LOSS),
            (20.0, 3, LossCause.RECEIVED_LOSS),
        ]
        svg = render_scatter_svg(points, title="T")
        assert parses(svg)
        for cause in (LossCause.ACKED_LOSS, LossCause.TIMEOUT_LOSS):
            assert CAUSE_COLORS[cause] in svg

    def test_scatter_empty(self):
        svg = render_scatter_svg([], title="T")
        assert parses(svg)
        assert "no losses" in svg

    def test_spatial_marks_sink(self):
        positions = {1: (0.0, 0.0), 2: (10.0, 10.0), 3: (20.0, 0.0)}
        points = [
            SpatialPoint(2, 10.0, 10.0, 50, True),
            SpatialPoint(1, 0.0, 0.0, 5, False),
        ]
        svg = render_spatial_svg(points, positions=positions)
        assert parses(svg)
        assert "polygon" in svg  # the sink triangle
        assert "sink: 50" in svg

    def test_stacked_days(self):
        days = [
            {LossCause.ACKED_LOSS: 5, LossCause.RECEIVED_LOSS: 3},
            {LossCause.ACKED_LOSS: 8},
            {},
        ]
        svg = render_stacked_days_svg(days, annotations={1: "snow"})
        assert parses(svg)
        assert "snow" in svg
        assert CAUSE_COLORS[LossCause.ACKED_LOSS] in svg

    def test_stacked_days_empty(self):
        assert parses(render_stacked_days_svg([]))
