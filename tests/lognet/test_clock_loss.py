"""Unit tests for the lossy logging substrate."""

import pytest

from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.lognet.clock import LocalClock, make_clocks
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.util.rng import RngStreams


def make_log(node, n):
    return NodeLog(node, [
        Event.make(EventType.TRANS, node, src=node, dst=node + 1,
                   packet=PacketKey(node, i), time=float(i))
        for i in range(n)
    ])


class TestLocalClock:
    def test_offset_and_drift(self):
        clock = LocalClock(offset=10.0, drift=1e-4)
        assert clock.local(0.0) == 10.0
        assert clock.local(1000.0) == pytest.approx(1010.1)

    def test_inverse(self):
        clock = LocalClock(offset=-3.0, drift=5e-5)
        for t in (0.0, 123.4, 1e6):
            assert clock.true(clock.local(t)) == pytest.approx(t)

    def test_make_clocks_deterministic_and_bounded(self):
        rng1, rng2 = RngStreams(5), RngStreams(5)
        c1 = make_clocks(range(10), rng1, max_offset=60.0, max_drift_ppm=50.0)
        c2 = make_clocks(range(10), rng2, max_offset=60.0, max_drift_ppm=50.0)
        assert c1 == c2
        for clock in c1.values():
            assert abs(clock.offset) <= 60.0
            assert abs(clock.drift) <= 50e-6

    def test_perfect_clocks(self):
        clocks = make_clocks([1, 2], RngStreams(1), perfect={2})
        assert clocks[2] == LocalClock(0.0, 0.0)
        assert clocks[1] != LocalClock(0.0, 0.0)


class TestLogLossSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LogLossSpec(write_fail_p=1.5)
        with pytest.raises(ValueError):
            LogLossSpec(chunk_size=0)
        with pytest.raises(ValueError):
            LogLossSpec(crash_keep_min=2.0)
        with pytest.raises(ValueError):
            LogLossSpec(write_fail_overrides=((1, 2.0),))

    def test_write_fail_for_override(self):
        spec = LogLossSpec(write_fail_p=0.1, write_fail_overrides=((7, 0.9),))
        assert spec.write_fail_for(7) == 0.9
        assert spec.write_fail_for(8) == 0.1

    def test_lossless_spec_is_identity(self):
        logs = {1: make_log(1, 20)}
        out = apply_losses(logs, LogLossSpec.lossless(), RngStreams(0))
        assert out[1] == logs[1]

    def test_moderate_preset_is_valid(self):
        assert LogLossSpec.moderate().write_fail_p > 0


class TestApplyLosses:
    def test_write_failures_drop_records_keep_order(self):
        logs = {1: make_log(1, 500)}
        out = apply_losses(logs, LogLossSpec(write_fail_p=0.3), RngStreams(1))
        kept = out[1]
        assert 0 < len(kept) < 500
        times = [e.time for e in kept]
        assert times == sorted(times)  # order preserved

    def test_whole_log_loss(self):
        logs = {n: make_log(n, 10) for n in range(1, 51)}
        out = apply_losses(logs, LogLossSpec(node_loss_p=0.5), RngStreams(2))
        assert 0 < len(out) < 50

    def test_crash_truncates_tail(self):
        logs = {1: make_log(1, 100)}
        out = apply_losses(logs, LogLossSpec(crash_p=1.0, crash_keep_min=0.5), RngStreams(3))
        kept = out[1]
        assert 50 <= len(kept) <= 100
        # the surviving prefix is contiguous
        assert [e.time for e in kept] == [float(i) for i in range(len(kept))]

    def test_chunk_loss_removes_whole_chunks(self):
        logs = {1: make_log(1, 64)}
        spec = LogLossSpec(chunk_size=16, chunk_loss_p=0.5)
        out = apply_losses(logs, spec, RngStreams(4))
        kept_times = {int(e.time) for e in out[1]}
        # every 16-aligned chunk is either fully present or fully absent
        for start in range(0, 64, 16):
            chunk = {start + i for i in range(16)}
            assert chunk <= kept_times or not (chunk & kept_times)

    def test_immune_nodes_untouched(self):
        logs = {1: make_log(1, 50), 2: make_log(2, 50)}
        spec = LogLossSpec(write_fail_p=1.0, immune=frozenset({2}))
        out = apply_losses(logs, spec, RngStreams(5))
        assert len(out[1]) == 0
        assert len(out[2]) == 50

    def test_deterministic_given_seed(self):
        logs = {1: make_log(1, 200)}
        spec = LogLossSpec.moderate()
        a = apply_losses(logs, spec, RngStreams(9))
        b = apply_losses(logs, spec, RngStreams(9))
        assert a == b


class TestCollectLogs:
    def test_timestamps_become_local(self):
        logs = {1: make_log(1, 5)}
        collected = collect_logs(logs, LogLossSpec.lossless(), seed=11)
        original = [e.time for e in logs[1]]
        skewed = [e.time for e in collected[1]]
        assert skewed != original
        # skew is affine, so order within a node is preserved
        assert skewed == sorted(skewed)

    def test_perfect_clock_nodes_keep_true_time(self):
        logs = {1: make_log(1, 5)}
        collected = collect_logs(
            logs, LogLossSpec.lossless(), seed=11, perfect_clocks=frozenset({1})
        )
        assert [e.time for e in collected[1]] == [e.time for e in logs[1]]

    def test_collection_is_deterministic(self):
        logs = {n: make_log(n, 30) for n in (1, 2, 3)}
        spec = LogLossSpec.moderate()
        a = collect_logs(logs, spec, seed=42)
        b = collect_logs(logs, spec, seed=42)
        assert a == b
        c = collect_logs(logs, spec, seed=43)
        assert a != c
