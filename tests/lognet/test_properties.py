"""Property-based tests for the lossy-log substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.lognet.clock import LocalClock
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec, apply_losses
from repro.util.rng import RngStreams

loss_specs = st.builds(
    LogLossSpec,
    write_fail_p=st.floats(min_value=0.0, max_value=1.0),
    crash_p=st.floats(min_value=0.0, max_value=1.0),
    crash_keep_min=st.floats(min_value=0.0, max_value=1.0),
    chunk_size=st.integers(min_value=1, max_value=32),
    chunk_loss_p=st.floats(min_value=0.0, max_value=1.0),
    node_loss_p=st.floats(min_value=0.0, max_value=0.9),
)


def make_logs(sizes):
    return {
        node: NodeLog(node, [
            Event.make(f"e{i}", node, time=float(i)) for i in range(size)
        ])
        for node, size in sizes.items()
    }


def is_subsequence(candidate, reference):
    it = iter(reference)
    return all(any(x == y for y in it) for x in candidate)


class TestLossProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=0, max_value=40),
            min_size=1,
            max_size=5,
        ),
        loss_specs,
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80)
    def test_output_is_per_node_subsequence(self, sizes, spec, seed):
        logs = make_logs(sizes)
        out = apply_losses(logs, spec, RngStreams(seed))
        assert set(out) <= set(logs)
        for node, degraded in out.items():
            assert is_subsequence(list(degraded), list(logs[node]))

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=0, max_value=20),
            min_size=1,
            max_size=3,
        ),
        loss_specs,
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_deterministic(self, sizes, spec, seed):
        logs = make_logs(sizes)
        a = apply_losses(logs, spec, RngStreams(seed))
        b = apply_losses(logs, spec, RngStreams(seed))
        assert a == b

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50)
    def test_lossless_is_identity(self, sizes, seed):
        logs = make_logs(sizes)
        assert apply_losses(logs, LogLossSpec.lossless(), RngStreams(seed)) == logs


class TestClockProperties:
    @given(
        st.floats(min_value=-600, max_value=600),
        st.floats(min_value=-2e-4, max_value=2e-4),
        st.lists(st.floats(min_value=0, max_value=1e7), min_size=2, max_size=20),
    )
    def test_affine_clock_preserves_order(self, offset, drift, times):
        clock = LocalClock(offset, drift)
        times = sorted(times)
        skewed = [clock.local(t) for t in times]
        assert skewed == sorted(skewed)

    @given(
        st.floats(min_value=-600, max_value=600),
        st.floats(min_value=-2e-4, max_value=2e-4),
        st.floats(min_value=0, max_value=1e7),
    )
    def test_clock_inverse(self, offset, drift, t):
        clock = LocalClock(offset, drift)
        assert abs(clock.true(clock.local(t)) - t) < 1e-6 * max(1.0, t)


class TestCollectorProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=0, max_value=15),
            min_size=1,
            max_size=3,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40)
    def test_collection_preserves_event_identity_modulo_time(self, sizes, seed):
        logs = make_logs(sizes)
        collected = collect_logs(logs, LogLossSpec.lossless(), seed)
        for node, log in collected.items():
            original = list(logs[node])
            assert [e.without_time() for e in log] == [
                e.without_time() for e in original
            ]
