"""Tests for round-by-round collection into a streaming session."""

import pytest

from repro.core.backends import IncrementalBackend
from repro.core.session import ReconstructionSession
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.lognet.collector import collect_into, collect_logs
from repro.lognet.loss import LogLossSpec


@pytest.fixture()
def true_logs():
    logs = {}
    for node in (1, 2, 3):
        events = []
        for seq in range(10):
            pkt = PacketKey(node, seq)
            t = seq * 10.0 + node
            events.append(Event.make("gen", node, packet=pkt, time=t))
            events.append(
                Event.make("trans", node, src=node, dst=99, packet=pkt, time=t + 1)
            )
        logs[node] = NodeLog(node, events)
    return logs


def test_rounds_match_one_shot(true_logs):
    spec = LogLossSpec(write_fail_p=0.2, crash_p=0.1)
    session = ReconstructionSession(backend=IncrementalBackend(), delivery_node=99)
    collected = collect_into(session, true_logs, spec, seed=3, rounds=4)
    # the returned logs equal a plain collect_logs with the same seed
    assert collected == collect_logs(true_logs, spec, seed=3)
    # and streaming the rounds reproduces the one-shot reconstruction
    oneshot = ReconstructionSession(delivery_node=99).run(collected)
    assert {p: f.labels() for p, f in session.flows().items()} == {
        p: f.labels() for p, f in oneshot.flows.items()
    }
    assert session.reports() == oneshot.reports
    assert session.batches_ingested == 4
