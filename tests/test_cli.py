"""End-to-end tests for the CLI (`refill` / `python -m repro`)."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "logs"
    code = main(["simulate", "--nodes", "20", "--days", "1", "--seed", "3",
                 "--out", str(out)])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_logs_and_metadata(self, log_dir):
        logs = list(log_dir.glob("node_*.log"))
        assert len(logs) >= 15  # some node logs may be lost entirely
        meta = json.loads((log_dir / "operations.json").read_text())
        assert meta["n_nodes"] == 20
        assert "sink" in meta and "outages" in meta

    def test_log_lines_parse(self, log_dir):
        from repro.events.codec import decode_log

        path = sorted(log_dir.glob("node_*.log"))[0]
        node = int(path.stem.split("_")[1])
        log = decode_log(node, path.read_text())
        assert all(e.node == node for e in log)


class TestAnalyze:
    def test_analyze_prints_breakdown(self, log_dir, capsys):
        assert main(["analyze", "--logs", str(log_dir)]) == 0
        out = capsys.readouterr().out
        assert "Loss cause shares" in out
        assert "received_sink" in out

    def test_metrics_out_has_required_counters(self, log_dir, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(["analyze", "--logs", str(log_dir),
                     "--metrics-out", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        counters = snap["counters"]
        assert counters["analyze.events.parsed"] > 0
        assert counters["refill.packets"] > 0
        assert counters["refill.events.logged"] > 0
        assert "refill.events.inferred" in counters
        assert "refill.transitions.intra" in counters
        assert "refill.transitions.inter" in counters
        # per-stage wall-time histograms
        for stage in ("span.analyze.load", "span.analyze.reconstruct",
                      "span.analyze.diagnose", "span.reconstruct.packet"):
            assert snap["histograms"][stage]["count"] >= 1

    def test_corrupt_lines_surface_per_node(self, log_dir, tmp_path):
        import shutil

        corrupted = tmp_path / "corrupted-logs"
        shutil.copytree(log_dir, corrupted)
        victim = sorted(corrupted.glob("node_*.log"))[0]
        node = int(victim.stem.split("_")[1])
        with victim.open("a") as fh:
            fh.write("@@ totally not an event @@\nanother bad line\n")
        metrics = tmp_path / "metrics.json"
        assert main(["analyze", "--logs", str(corrupted),
                     "--metrics-out", str(metrics)]) == 0
        counters = json.loads(metrics.read_text())["counters"]
        assert counters[f"codec.corrupt_lines{{node={node}}}"] == 2

    def test_profile_prints_stage_table(self, log_dir, capsys):
        assert main(["analyze", "--logs", str(log_dir), "--profile"]) == 0
        err = capsys.readouterr().err
        assert "stage" in err and "p95_ms" in err
        assert "analyze.reconstruct" in err


class TestVerbosityFlags:
    def test_default_narrates_on_stderr(self, log_dir, capsys):
        assert main(["analyze", "--logs", str(log_dir)]) == 0
        err = capsys.readouterr().err
        assert "event=analyze.reconstructing" in err

    def test_quiet_silences_narration(self, log_dir, capsys):
        assert main(["analyze", "-q", "--logs", str(log_dir)]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "Loss cause shares" in captured.out  # stdout unaffected

    def test_verbose_enables_debug(self, log_dir, capsys):
        assert main(["analyze", "-v", "--logs", str(log_dir)]) == 0
        assert "level=debug" in capsys.readouterr().err

    def test_log_json_lines(self, log_dir, capsys):
        assert main(["analyze", "--log-json", "--logs", str(log_dir)]) == 0
        err_lines = capsys.readouterr().err.splitlines()
        assert err_lines
        records = [json.loads(line) for line in err_lines]
        assert any(r["event"] == "analyze.reconstructing" for r in records)


class TestTrace:
    def test_trace_known_packet(self, log_dir, capsys):
        # find a packet that exists in the logs
        from repro.events.codec import decode_log

        packet = None
        for path in sorted(log_dir.glob("node_*.log")):
            node = int(path.stem.split("_")[1])
            for event in decode_log(node, path.read_text()):
                if event.packet is not None:
                    packet = event.packet
                    break
            if packet:
                break
        assert packet is not None
        assert main(["trace", "--logs", str(log_dir), str(packet)]) == 0
        out = capsys.readouterr().out
        assert "diagnosis:" in out

    def test_trace_unknown_packet(self, log_dir, capsys):
        assert main(["trace", "--logs", str(log_dir), "p9999.9999"]) == 1


class TestFigures:
    def test_figures_written(self, log_dir, tmp_path):
        out = tmp_path / "figs"
        assert main(["figures", "--logs", str(log_dir), "--out", str(out)]) == 0
        import xml.dom.minidom

        for name in ("fig4_sink_view.svg", "fig5_loss_positions.svg"):
            path = out / name
            assert path.exists()
            xml.dom.minidom.parse(str(path))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.nodes == 100 and args.days == 5


class TestVersion:
    def test_version_flag_prints_version_and_exits_zero(self, capsys):
        from repro.cli import _version_string

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out.endswith(_version_string())
        assert out.split()[-1][0].isdigit()  # looks like a version number

    def test_version_string_falls_back_to_source_tree(self, monkeypatch):
        from importlib import metadata

        from repro import __version__
        from repro.cli import _version_string

        def missing(_name):
            raise metadata.PackageNotFoundError

        monkeypatch.setattr(metadata, "version", missing)
        assert _version_string() == __version__


class TestBrokenPipe:
    def test_broken_pipe_exits_with_sigpipe_status(self, monkeypatch, capsys):
        """`refill analyze | head` must die quietly with 128 + SIGPIPE.

        capsys keeps the handler's dup2-to-devnull away from pytest's
        fd-level capture (an in-memory stdout has no fileno, which the
        handler tolerates — same as an already-closed real stdout).
        """
        from repro import cli

        def reader_went_away(_args):
            raise BrokenPipeError

        monkeypatch.setattr(cli, "_cmd_analyze", reader_went_away)
        assert main(["analyze", "-q", "--logs", "ignored"]) == 141

    def test_broken_pipe_in_real_pipeline(self, log_dir):
        """End to end: a reader that hangs up never produces a traceback."""
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        script = (
            "import sys\n"
            "from repro.cli import main\n"
            "class Burst:\n"
            "    @staticmethod\n"
            "    def run(args):\n"
            "        for _ in range(100000):\n"
            "            print('x' * 80)\n"
            "        return 0\n"
            "import repro.cli as cli\n"
            "cli._cmd_analyze = Burst.run\n"
            f"sys.exit(main(['analyze', '-q', '--logs', {str(log_dir)!r}]))\n"
        )
        writer = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        assert writer.stdout is not None
        writer.stdout.read(80)  # take one line's worth, then hang up
        writer.stdout.close()
        _, err = writer.communicate(timeout=60)
        assert writer.returncode == 141
        assert b"Traceback" not in err
        assert b"Exception ignored" not in err
