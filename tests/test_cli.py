"""End-to-end tests for the CLI (`refill` / `python -m repro`)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def log_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "logs"
    code = main(["simulate", "--nodes", "20", "--days", "1", "--seed", "3",
                 "--out", str(out)])
    assert code == 0
    return out


class TestSimulate:
    def test_writes_logs_and_metadata(self, log_dir):
        logs = list(log_dir.glob("node_*.log"))
        assert len(logs) >= 15  # some node logs may be lost entirely
        meta = json.loads((log_dir / "operations.json").read_text())
        assert meta["n_nodes"] == 20
        assert "sink" in meta and "outages" in meta

    def test_log_lines_parse(self, log_dir):
        from repro.events.codec import decode_log

        path = sorted(log_dir.glob("node_*.log"))[0]
        node = int(path.stem.split("_")[1])
        log = decode_log(node, path.read_text())
        assert all(e.node == node for e in log)


class TestAnalyze:
    def test_analyze_prints_breakdown(self, log_dir, capsys):
        assert main(["analyze", "--logs", str(log_dir)]) == 0
        out = capsys.readouterr().out
        assert "Loss cause shares" in out
        assert "received_sink" in out


class TestTrace:
    def test_trace_known_packet(self, log_dir, capsys):
        # find a packet that exists in the logs
        from repro.events.codec import decode_log

        packet = None
        for path in sorted(log_dir.glob("node_*.log")):
            node = int(path.stem.split("_")[1])
            for event in decode_log(node, path.read_text()):
                if event.packet is not None:
                    packet = event.packet
                    break
            if packet:
                break
        assert packet is not None
        assert main(["trace", "--logs", str(log_dir), str(packet)]) == 0
        out = capsys.readouterr().out
        assert "diagnosis:" in out

    def test_trace_unknown_packet(self, log_dir, capsys):
        assert main(["trace", "--logs", str(log_dir), "p9999.9999"]) == 1


class TestFigures:
    def test_figures_written(self, log_dir, tmp_path):
        out = tmp_path / "figs"
        assert main(["figures", "--logs", str(log_dir), "--out", str(out)]) == 0
        import xml.dom.minidom

        for name in ("fig4_sink_view.svg", "fig5_loss_positions.svg"):
            path = out / name
            assert path.exists()
            xml.dom.minidom.parse(str(path))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.nodes == 100 and args.days == 5
