"""Unit tests for LearnedSpec serialization and realization."""

import json

import pytest

from repro.events.packet import PacketKey
from repro.fsm.prerequisites import Peer
from repro.learn.prereqs import MinedRule
from repro.learn.spec import (
    SPEC_FORMAT,
    LearnedSpec,
    load_learned_spec,
    save_learned_spec,
)


def sample_spec(**overrides) -> LearnedSpec:
    fields = dict(
        name="learned",
        k=2,
        min_support=0.9,
        initial="q0",
        states=("q0", "q1", "q2", "q3"),
        transitions=(
            ("q0", "gen", "q1"),
            ("q0", "recv", "q1"),
            ("q1", "trans", "q2"),
            ("q2", "ack_recvd", "q3"),
            ("q2", "trans", "q2"),
        ),
        initials={},
        sender_side=("ack_recvd", "trans"),
        receiver_side=("recv",),
        local_labels=("gen",),
        origin_only=("gen",),
        aux_labels=("parent_change",),
        prereqs=(
            MinedRule("ack_recvd", "dst", "q1", (), 10, 10),
            MinedRule("recv", "src", "q2", ("q3",), 20, 21),
        ),
        sink=3,
        base_station=4,
        stats={"packets": 21, "traces": 60},
    )
    fields.update(overrides)
    return LearnedSpec(**fields)


class _Ctx:
    def upstream(self, node):
        return 7

    def downstream(self, node):
        return 9


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        spec = sample_spec()
        text = spec.to_json_str()
        again = LearnedSpec.from_json(json.loads(text))
        assert again == spec
        assert again.to_json_str() == text

    def test_canonical_bytes(self):
        text = sample_spec().to_json_str()
        assert text.endswith("\n")
        assert ": " not in text  # minimal separators
        data = json.loads(text)
        assert data["format"] == SPEC_FORMAT

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = sample_spec()
        save_learned_spec(spec, path)
        assert load_learned_spec(path) == spec

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="not a learned spec"):
            LearnedSpec.from_json({"format": "something-else"})


class TestRealization:
    def test_graph_matches_spec(self):
        graph = sample_spec().graph()
        assert graph.initial == "q0"
        assert set(graph.states) == {"q0", "q1", "q2", "q3"}
        assert len(graph.transitions) == 5

    def test_prereq_rules_realized(self):
        template = sample_spec().realize_template()
        (recv_rule,) = template.prereq_rules("recv")
        assert recv_rule.peer is Peer.SRC
        assert recv_rule.state == "q2"
        assert recv_rule.alt_states == ("q3",)
        (ack_rule,) = template.prereq_rules("ack_recvd")
        assert ack_rule.peer is Peer.DST

    def test_origin_only_admissibility(self):
        template = sample_spec().realize_template()
        packet = PacketKey(5, 1)
        gen_edge = next(
            t for t in template.graph.transitions if t.event == "gen"
        )
        assert template.edge_admissible(gen_edge, 5, packet, _Ctx())
        assert not template.edge_admissible(gen_edge, 6, packet, _Ctx())
        recv_edge = next(
            t for t in template.graph.transitions if t.event == "recv"
        )
        assert template.edge_admissible(recv_edge, 6, packet, _Ctx())

    def test_side_based_realizer(self):
        template = sample_spec().realize_template()
        packet = PacketKey(5, 1)
        recv = template.realize_event("recv", 2, packet, _Ctx())
        assert (recv.src, recv.dst) == (7, 2)
        trans = template.realize_event("trans", 2, packet, _Ctx())
        assert (trans.src, trans.dst) == (2, 9)
        gen = template.realize_event("gen", 2, packet, _Ctx())
        assert (gen.src, gen.dst) == (None, None)

    def test_role_initials(self):
        spec = sample_spec(initials={"origin": "q1"})
        template = spec.realize_template()
        packet = PacketKey(5, 1)
        assert template.initial_state(5, packet) == "q1"  # origin
        assert template.initial_state(6, packet) == "q0"  # forwarder
        assert template.initial_state(3, packet) == "q0"  # sink (no entry)

    def test_deployment_spec_wraps_single_role(self):
        dspec = sample_spec().deployment_spec()
        assert set(dspec.roles) == {"learned"}
        assert "parent_change" in dspec.aux_labels


class TestCheckSpecIntegration:
    def test_load_spec_accepts_json_path(self, tmp_path):
        from repro.check.specs import load_spec

        path = tmp_path / "learned.json"
        save_learned_spec(sample_spec(), path)
        dspec = load_spec(str(path))
        assert set(dspec.roles) == {"learned"}

    def test_clean_spec_has_no_model_errors(self, tmp_path):
        from repro.check.runner import model_errors, run_check

        report = run_check(sample_spec().deployment_spec())
        assert model_errors(report) == []

    def test_tampered_prereq_state_trips_xf_error(self):
        from repro.check.runner import model_errors, run_check

        bad = sample_spec(
            prereqs=(MinedRule("recv", "src", "NO_SUCH_STATE", (), 5, 5),)
        )
        report = run_check(bad.deployment_spec())
        errors = model_errors(report)
        assert errors, "dangling prerequisite state must be a model error"
        assert any(f.code.startswith("XF") for f in errors)
