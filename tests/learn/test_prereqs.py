"""Unit tests for the prerequisite miner (direction, support, states)."""

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.learn.prereqs import mine_prereqs
from repro.learn.traces import extract_traces


def _extend(log, events):
    for event in events:
        log.append(event)


def _delivered(logs, seq, *, drop_receiver_log=False):
    """Append one delivered 1 → 2 → 3(sink) → 4(bs) episode to ``logs``."""
    p = PacketKey(1, seq)
    _extend(logs.setdefault(1, NodeLog(1)), [
        Event.make("gen", 1, packet=p),
        Event.make("trans", 1, src=1, dst=2, packet=p),
        Event.make("ack_recvd", 1, src=1, dst=2, packet=p),
    ])
    if not drop_receiver_log:
        _extend(logs.setdefault(2, NodeLog(2)), [
            Event.make("recv", 2, src=1, dst=2, packet=p),
            Event.make("trans", 2, src=2, dst=3, packet=p),
            Event.make("ack_recvd", 2, src=2, dst=3, packet=p),
        ])
    _extend(logs.setdefault(3, NodeLog(3)), [
        Event.make("recv", 3, src=2, dst=3, packet=p),
        Event.make("trans", 3, src=3, dst=4, packet=p),
    ])
    _extend(logs.setdefault(4, NodeLog(4)), [
        Event.make("recv", 4, src=3, dst=4, packet=p),
    ])
    return logs


def _timeout(logs, seq):
    """A 1 → 2 attempt whose receiver never saw the packet."""
    p = PacketKey(1, 100 + seq)
    _extend(logs.setdefault(1, NodeLog(1)), [
        Event.make("gen", 1, packet=p),
        Event.make("trans", 1, src=1, dst=2, packet=p),
        Event.make("timeout", 1, src=1, dst=2, packet=p),
    ])
    return logs


def _mine(logs, **kwargs):
    corpus = extract_traces(logs, sink=3, base_station=4)
    graph, initials = corpus.mine(k=2)
    return corpus, graph, mine_prereqs(corpus, graph, initials, **kwargs)


class TestDirection:
    def test_recv_requires_upstream_sender_state(self):
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        _corpus, graph, rules = _mine(logs)
        recv = next(r for r in rules if r.label == "recv")
        assert recv.peer == "src"
        assert recv.support == 1.0
        # the prerequisite state is one the sender visits after sending
        assert graph.has_state(recv.state)

    def test_ack_is_a_confirmation_and_requires_receiver(self):
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        _corpus, _graph, rules = _mine(logs)
        ack = next(r for r in rules if r.label == "ack_recvd")
        assert ack.peer == "dst"
        assert ack.support == 1.0

    def test_trans_gets_no_rule(self):
        # a first trans is not preceded by a same-pair event, so it is not
        # a confirmation and must not yield a (causally reversed) DST rule
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        _corpus, _graph, rules = _mine(logs)
        assert not any(r.label == "trans" for r in rules)


class TestSupport:
    def test_timeout_rule_dies_on_low_support(self):
        # timeouts are confirmations (preceded by their trans) but their
        # receiver usually logged nothing: support collapses below 0.9
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        for seq in range(4):
            _timeout(logs, seq)
        _corpus, _graph, rules = _mine(logs)
        assert not any(r.label == "timeout" for r in rules)

    def test_missing_peer_log_is_not_counted_against(self):
        # node 2's log absent entirely: recv occurrences at node 3 citing
        # src=2 are skipped (absence of evidence), not counted unsupported
        logs = {}
        for seq in range(4):
            _delivered(logs, seq, drop_receiver_log=True)
        corpus, _graph, rules = _mine(logs)
        assert 2 not in corpus.log_nodes
        recv = next((r for r in rules if r.label == "recv"), None)
        if recv is not None:  # surviving observations are all supported
            assert recv.support == 1.0

    def test_min_observations_floor(self):
        logs = _delivered({}, 0)
        _corpus, _graph, rules = _mine(logs, min_observations=100)
        assert rules == []

    def test_delivery_hop_excluded_from_statistics(self):
        # the base station's recv must not contribute occurrences: its
        # sender is the sink whose serial trans is unloggable in the field
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        corpus, graph, _rules = _mine(logs)
        from repro.learn.traces import NodeTrace  # noqa: F401  (doc import)

        bs_traces = [t for t in corpus.traces if t.role == "delivery"]
        assert bs_traces, "fixture must exercise the delivery role"


class TestDeterminism:
    def test_rules_sorted_and_stable(self):
        logs = {}
        for seq in range(4):
            _delivered(logs, seq)
        _c1, _g1, rules1 = _mine(logs)
        _c2, _g2, rules2 = _mine(logs)
        assert rules1 == rules2
        assert [r.label for r in rules1] == sorted(r.label for r in rules1)
