"""Property tests for the learning pipeline (Hypothesis).

Three invariants the subsystem advertises:

- every training trace stays accepted by the mined machine, for any corpus
  and any k (k-tails merging only grows the language);
- mining is order-insensitive: shuffling or duplicating the corpus yields
  an identical graph (canonicalization before mining);
- spec serialization is byte-stable through a JSON round trip.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn.ktails import accepts, mine_fsm
from repro.learn.prereqs import MinedRule
from repro.learn.spec import LearnedSpec, build_spec
from repro.learn.traces import TraceCorpus, extract_traces
from tests.strategies import label_traces


class TestMiningProperties:
    @given(label_traces(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60)
    def test_training_traces_stay_accepted(self, traces, k):
        graph = mine_fsm(traces, k=k)
        for trace in traces:
            assert accepts(graph, trace)

    @given(label_traces(min_traces=2), st.integers(min_value=1, max_value=3),
           st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_shuffle_and_duplication_invariance(self, traces, k, rng):
        base = mine_fsm(traces, k=k)
        shuffled = list(traces)
        rng.shuffle(shuffled)
        shuffled.append(shuffled[0])  # duplicates must not matter either
        again = mine_fsm(shuffled, k=k)
        assert base.states == again.states
        assert base.transitions == again.transitions
        assert base.initial == again.initial

    @given(label_traces(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=40)
    def test_mined_graph_is_deterministic(self, traces, k):
        graph = mine_fsm(traces, k=k)
        for state in graph.states:
            seen = set()
            for t in graph.outgoing(state):
                assert t.event not in seen, "same-label edge fan survived"
                seen.add(t.event)


def _spec_from_traces(traces) -> LearnedSpec:
    """A minimal spec built straight from label sequences (no logs)."""
    from collections import Counter

    corpus = TraceCorpus(
        traces=[],
        support=Counter({tuple(t): 1 for t in traces}),
        role_sequences={"forwarder": {tuple(t) for t in traces}},
    )
    graph, initials = corpus.mine(k=2)
    return build_spec(
        corpus, graph, (), initials=initials, name="prop", k=2, min_support=0.9
    )


class TestSpecProperties:
    @given(label_traces())
    @settings(max_examples=40)
    def test_json_round_trip_is_byte_identical(self, traces):
        spec = _spec_from_traces(traces)
        text = spec.to_json_str()
        assert LearnedSpec.from_json(json.loads(text)).to_json_str() == text

    @given(label_traces(min_traces=2), st.randoms(use_true_random=False))
    @settings(max_examples=30)
    def test_spec_bytes_are_order_insensitive(self, traces, rng):
        a = _spec_from_traces(traces)
        shuffled = list(traces)
        rng.shuffle(shuffled)
        b = _spec_from_traces(shuffled)
        assert a.to_json_str() == b.to_json_str()
