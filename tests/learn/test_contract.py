"""The learn → check → analyze closed loop, end to end.

One simulated deployment feeds the whole contract: a near-lossless corpus
trains the model, ``refill check`` accepts the result (and rejects a
tampered one), ``refill analyze`` reconstructs a *held-out* lossy corpus
with it, and the reconstruction scores ≥ 0.9 cause accuracy against ground
truth — the learned model has to be about as good as the hand-written
template it replaces.
"""

import json

import pytest

from repro.analysis.accuracy import score_run
from repro.analysis.pipeline import default_loss_spec, evaluate, run_simulation
from repro.cli import main
from repro.events.store import StoreMetadata, save_store
from repro.learn import learn_from_logs
from repro.learn.evaluate import evaluate_spec, graph_similarity
from repro.learn.spec import load_learned_spec, save_learned_spec
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.scenarios import small_network
from repro.simnet.truth import ground_truth_template


@pytest.fixture(scope="module")
def sim():
    # cached in the pipeline's _SIM_CACHE, shared with the accuracy tests
    return run_simulation(small_network(n_nodes=25, minutes=30.0))


@pytest.fixture(scope="module")
def training_logs(sim):
    return collect_logs(
        sim.true_logs,
        LogLossSpec.lossless(),
        11,
        perfect_clocks=frozenset({sim.base_station_node}),
    )


@pytest.fixture(scope="module")
def spec(sim, training_logs):
    return learn_from_logs(
        training_logs,
        sink=sim.sink,
        base_station=sim.base_station_node,
        name="ctp-learned",
    )


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, sim, training_logs):
    out = tmp_path_factory.mktemp("learn-contract") / "store"
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=sim.params.gen_interval,
        outages=sim.params.base_station.outages,
    )
    save_store(out, training_logs, metadata)
    return out


class TestLearnCheckContract:
    def test_learned_spec_passes_check(self, spec, tmp_path):
        path = tmp_path / "learned.json"
        save_learned_spec(spec, path)
        assert main(["check", "--spec", str(path), "-q"]) == 0

    def test_tampered_spec_fails_check(self, spec, tmp_path):
        data = json.loads(spec.to_json_str())
        data["prereqs"][0]["state"] = "NO_SUCH_STATE"
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(data))
        assert main(["check", "--spec", str(path), "-q"]) == 1

    def test_cli_learn_is_byte_deterministic(self, store_dir, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["learn", str(store_dir), "--out", str(a), "-q"]) == 0
        assert main(["learn", str(store_dir), "--out", str(b), "-q"]) == 0
        assert a.read_bytes() == b.read_bytes()
        # and the CLI output round-trips through the library loader
        loaded = load_learned_spec(a)
        assert loaded.to_json_str() == a.read_text()


class TestAnalyzeWithLearnedSpec:
    def test_analyze_reconstructs_flows(self, spec, store_dir, tmp_path, capsys):
        path = tmp_path / "learned.json"
        save_learned_spec(spec, path)
        flows_out = tmp_path / "flows.json"
        code = main([
            "analyze", "--logs", str(store_dir), "--spec", str(path),
            "--flows-out", str(flows_out), "-q",
        ])
        assert code == 0
        assert "packets reconstructed" in capsys.readouterr().out
        assert json.loads(flows_out.read_text())  # non-empty flow map


class TestHeldOutAccuracy:
    def test_cause_accuracy_above_floor_at_mild_loss(self, sim, spec):
        # held-out: a different collection seed and actual log loss
        evaluation = evaluate_spec(
            spec,
            small_network(n_nodes=25, minutes=30.0),
            heldout_seed=777,
            loss_factor=0.5,
            sim=sim,
        )
        summary = evaluation.summary()
        assert summary["coverage"] > 0.95
        assert summary["cause_accuracy"] >= 0.9
        assert summary["event_precision"] > 0.85
        # the learned machine invents no behavior the protocol lacks
        assert summary["graph_precision"] == 1.0

    def test_learned_close_to_handwritten_template(self, sim, spec):
        # same held-out corpus, hand-written vs learned template
        params = small_network(n_nodes=25, minutes=30.0)
        loss = default_loss_spec(sim).scaled(0.5)
        learned = evaluate(
            params, collection_seed=777, loss_spec=loss, sim=sim,
            template=spec.realize_template(),
        )
        handwritten = evaluate(
            params, collection_seed=777, loss_spec=loss, sim=sim,
        )
        score_l = score_run(
            learned.flows, learned.reports, learned.collected_logs,
            sim.truth, sink=sim.sink,
        )
        score_h = score_run(
            handwritten.flows, handwritten.reports, handwritten.collected_logs,
            sim.truth, sink=sim.sink,
        )
        assert score_l.cause_accuracy >= score_h.cause_accuracy - 0.05

    def test_similarity_is_an_overlap_measure(self, spec):
        reference = ground_truth_template().graph
        sim_self = graph_similarity(reference, reference, depth=4)
        assert sim_self.precision == sim_self.recall == 1.0
        sim_learned = graph_similarity(spec.graph(), reference, depth=4)
        assert 0.0 <= sim_learned.precision <= 1.0
        assert 0.0 <= sim_learned.recall <= 1.0
