"""docs/LEARNING.md stays honest: spec fields documented, none stale."""

import pathlib
import re

from repro.learn.spec import SPEC_FIELDS

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "LEARNING.md"


class TestSpecFieldCatalogue:
    def test_every_spec_field_is_documented(self):
        doc = DOC.read_text()
        missing = [f for f in SPEC_FIELDS if f"#### {f}" not in doc]
        assert not missing, f"undocumented spec fields: {missing}"

    def test_no_stale_field_headings(self):
        doc = DOC.read_text()
        documented = re.findall(r"^#### (\w+)\s*$", doc, flags=re.M)
        stale = [f for f in documented if f not in SPEC_FIELDS]
        assert not stale, f"doc headings for retired spec fields: {stale}"

    def test_headings_match_serialized_output(self):
        from tests.learn.test_spec import sample_spec

        data = sample_spec().to_json()
        assert tuple(sorted(data)) == SPEC_FIELDS

    def test_doc_names_the_cli_loop(self):
        doc = DOC.read_text()
        for needle in ("refill learn", "check --spec", "analyze --logs"):
            assert needle in doc
