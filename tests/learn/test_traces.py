"""Unit tests for trace extraction, filtering, and multi-initial mining."""

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.learn.traces import ExtractionOptions, extract_traces


def _log(node, events):
    return NodeLog(node, events)


def _pkt(origin, seq=0):
    return PacketKey(origin, seq)


def chain_logs(seq=0):
    """A 1 → 2 → 3(sink) → 4(bs) delivery with full logging."""
    p = _pkt(1, seq)
    return {
        1: _log(1, [
            Event.make("gen", 1, packet=p, time=1.0),
            Event.make("trans", 1, src=1, dst=2, packet=p, time=2.0),
            Event.make("ack_recvd", 1, src=1, dst=2, packet=p, time=3.0),
        ]),
        2: _log(2, [
            Event.make("recv", 2, src=1, dst=2, packet=p, time=2.5),
            Event.make("trans", 2, src=2, dst=3, packet=p, time=4.0),
            Event.make("ack_recvd", 2, src=2, dst=3, packet=p, time=5.0),
        ]),
        3: _log(3, [
            Event.make("recv", 3, src=2, dst=3, packet=p, time=4.5),
            Event.make("trans", 3, src=3, dst=4, packet=p, time=6.0),
        ]),
        4: _log(4, [
            Event.make("recv", 4, src=3, dst=4, packet=p, time=6.5),
        ]),
    }


class TestExtraction:
    def test_roles_and_counts(self):
        corpus = extract_traces(chain_logs(), sink=3, base_station=4)
        assert corpus.packets == 1
        assert corpus.role_counts() == {
            "origin": 1, "delivery": 1, "sink": 1, "forwarder": 1,
        }
        by = corpus.by_packet()[_pkt(1)]
        assert by[1].role == "origin"
        assert by[3].role == "sink"
        assert by[4].role == "delivery"
        assert by[2].labels == ("recv", "trans", "ack_recvd")

    def test_label_side_classification(self):
        corpus = extract_traces(chain_logs(), sink=3, base_station=4)
        assert corpus.receiver_side == frozenset({"recv"})
        assert corpus.sender_side == frozenset({"trans", "ack_recvd"})
        assert corpus.local_labels == frozenset({"gen"})
        assert corpus.origin_only == frozenset({"gen"})

    def test_aux_labels_from_packetless_events(self):
        logs = chain_logs()
        logs[2].append(Event.make("parent_change", 2, time=9.0))
        corpus = extract_traces(logs, sink=3, base_station=4)
        assert corpus.aux_labels == frozenset({"parent_change"})
        # packet-less events never enter the traces
        assert all("parent_change" not in t.labels for t in corpus.traces)

    def test_corrupt_node_filter(self):
        corpus = extract_traces(
            chain_logs(), sink=3, base_station=4, corrupt_lines={2: 3},
        )
        assert corpus.dropped_traces == 1
        assert 2 not in corpus.nodes
        assert 2 not in corpus.log_nodes
        kept = extract_traces(
            chain_logs(), sink=3, base_station=4, corrupt_lines={2: 3},
            options=ExtractionOptions(filter_corrupt_nodes=False),
        )
        assert kept.dropped_traces == 0
        assert 2 in kept.log_nodes

    def test_min_trace_support_deweights_rare_sequences(self):
        logs = {}
        for seq in range(3):
            for node, log in chain_logs(seq).items():
                dest = logs.setdefault(node, _log(node, []))
                for event in log:
                    dest.append(event)
        # one damaged one-off ordering
        p = _pkt(9, 0)
        logs[2].append(Event.make("ack_recvd", 2, src=2, dst=3, packet=p))
        corpus = extract_traces(
            logs, sink=3, base_station=4,
            options=ExtractionOptions(min_trace_support=2),
        )
        assert ("ack_recvd",) not in corpus.training_sequences()
        assert ("recv", "trans", "ack_recvd") in corpus.training_sequences()


class TestMultiInitialMining:
    def test_origin_traces_get_their_own_initial(self):
        # ctp-nogen shape: origins start mid-protocol (no gen event)
        p1, p2 = _pkt(1, 0), _pkt(1, 1)
        logs = {
            1: _log(1, [
                Event.make("trans", 1, src=1, dst=2, packet=p1),
                Event.make("ack_recvd", 1, src=1, dst=2, packet=p1),
                Event.make("trans", 1, src=1, dst=2, packet=p2),
                Event.make("ack_recvd", 1, src=1, dst=2, packet=p2),
            ]),
            2: _log(2, [
                Event.make("recv", 2, src=1, dst=2, packet=p1),
                Event.make("trans", 2, src=2, dst=3, packet=p1),
                Event.make("ack_recvd", 2, src=2, dst=3, packet=p1),
                Event.make("recv", 2, src=1, dst=2, packet=p2),
                Event.make("trans", 2, src=2, dst=3, packet=p2),
                Event.make("ack_recvd", 2, src=2, dst=3, packet=p2),
            ]),
        }
        corpus = extract_traces(logs, sink=3, base_station=4)
        graph, initials = corpus.mine(k=2)
        assert "origin" in initials
        start = initials["origin"]
        assert start != graph.initial
        # the origin behavior replays from its dedicated start
        from repro.learn.ktails import replay_states

        assert replay_states(graph, ("trans", "ack_recvd"), start=start)
        # while the common initial still drives the forwarder behavior
        assert replay_states(graph, ("recv", "trans", "ack_recvd"))

    def test_shared_behavior_keeps_single_initial(self):
        corpus = extract_traces(chain_logs(), sink=3, base_station=4)
        _graph, initials = corpus.mine(k=2)
        # gen-ful corpora: the origin starts at IDLE like everyone else
        assert "origin" not in initials

    def test_mined_graph_accepts_all_training_sequences(self):
        corpus = extract_traces(chain_logs(), sink=3, base_station=4)
        graph, initials = corpus.mine(k=2)
        assert initials == {}
        from repro.learn.ktails import accepts

        for seq in corpus.training_sequences():
            assert accepts(graph, seq)
