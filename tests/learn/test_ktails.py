"""Unit tests for the determinizing k-tails miner and its replay helper."""

import pytest

from repro.learn.ktails import accepts, mine_fsm, replay_states


class TestDeterminism:
    def test_states_are_canonically_named(self):
        graph = mine_fsm([["a", "b"], ["a", "c"]], k=2)
        assert graph.initial == "q0"
        assert all(s.startswith("q") for s in graph.states)
        # BFS order: q0 first, then its successors in label order
        assert graph.states[0] == "q0"

    def test_shuffled_corpus_gives_identical_graph(self):
        traces = [
            ["recv", "trans", "ack_recvd"],
            ["recv", "trans", "trans", "ack_recvd"],
            ["recv", "trans", "timeout"],
            ["gen", "trans", "ack_recvd"],
        ]
        a = mine_fsm(traces, k=2)
        b = mine_fsm(list(reversed(traces)) + [traces[0]], k=2)
        assert a.states == b.states
        assert a.transitions == b.transitions
        assert a.initial == b.initial

    def test_graph_is_deterministic(self):
        # Merging can fan out same-label edges; the determinization pass
        # must fold them (the template validator treats a fan as an error).
        traces = [
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["x", "a", "b", "c"],
            ["x", "a", "b", "d", "a", "b"],
        ]
        for k in (1, 2, 3):
            graph = mine_fsm(traces, k=k)
            for state in graph.states:
                for label in graph.events:
                    assert len(graph.transitions_from(state, label)) <= 1
            for trace in traces:
                assert accepts(graph, trace)

    def test_every_state_reachable(self):
        graph = mine_fsm([["a", "b"], ["b", "a", "a"]], k=1)
        seen = {graph.initial}
        frontier = [graph.initial]
        while frontier:
            state = frontier.pop()
            for t in graph.outgoing(state):
                if t.dst not in seen:
                    seen.add(t.dst)
                    frontier.append(t.dst)
        assert seen == set(graph.states)

    def test_custom_initial_name(self):
        graph = mine_fsm([["a"]], k=1, initial_name="START")
        assert graph.initial == "START"

    def test_k_zero_collapses_everything(self):
        graph = mine_fsm([["a", "b", "a"]], k=0)
        assert len(graph.states) == 1
        assert accepts(graph, ["b", "b", "a"])

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            mine_fsm([["a"]], k=-1)


class TestReplayStates:
    def test_replays_state_sequence(self):
        graph = mine_fsm([["a", "b", "c"]], k=3)
        states = replay_states(graph, ["a", "b"])
        assert states is not None
        assert len(states) == 3
        assert states[0] == graph.initial

    def test_unexplainable_trace_returns_none(self):
        graph = mine_fsm([["a", "b"]], k=2)
        assert replay_states(graph, ["b"]) is None
        assert replay_states(graph, ["a", "a"]) is None

    def test_replay_from_custom_start(self):
        graph = mine_fsm([["a", "b", "c"]], k=3)
        mid = replay_states(graph, ["a"])[-1]
        states = replay_states(graph, ["b", "c"], start=mid)
        assert states is not None and states[0] == mid

    def test_empty_trace_is_trivially_replayable(self):
        graph = mine_fsm([["a"]], k=1)
        assert replay_states(graph, []) == [graph.initial]


class TestMiningShim:
    def test_fsm_mining_reexports_the_same_functions(self):
        from repro.fsm import mining

        assert mining.mine_fsm is mine_fsm
        assert mining.accepts is accepts
