"""Unit tests for pipeline internals: loss-time estimation fallbacks and
the simulation cache key."""

import pytest

from repro.analysis.pipeline import _cache_key, _estimate_times, run_simulation
from repro.baselines.sink_view import SinkView
from repro.core.diagnosis import LossCause, LossReport
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.scenarios import small_network


class TestEstimateTimes:
    def test_sink_view_preferred(self):
        pkt = PacketKey(1, 2)
        view = SinkView([(PacketKey(1, 1), 100.0)], gen_interval=50.0)
        reports = {pkt: LossReport(LossCause.UNKNOWN, None)}
        collected = {
            1: NodeLog(1, [Event.make("gen", 1, packet=pkt, time=999.0)]),
        }
        est = _estimate_times(view, reports, collected)
        # the sink-view extrapolation (150) wins over the local gen stamp
        assert est[pkt] == pytest.approx(150.0)

    def test_gen_record_fallback(self):
        pkt = PacketKey(9, 1)  # origin 9 never delivered anything
        view = SinkView([], gen_interval=50.0)
        reports = {pkt: LossReport(LossCause.UNKNOWN, None)}
        collected = {
            9: NodeLog(9, [Event.make("gen", 9, packet=pkt, time=42.0)]),
        }
        est = _estimate_times(view, reports, collected)
        assert est[pkt] == pytest.approx(42.0)

    def test_no_estimate_possible(self):
        pkt = PacketKey(9, 1)
        view = SinkView([], gen_interval=50.0)
        reports = {pkt: LossReport(LossCause.UNKNOWN, None)}
        est = _estimate_times(view, reports, {})
        assert est[pkt] is None


class TestCacheKey:
    def test_distinct_params_distinct_keys(self):
        a = small_network(n_nodes=10, minutes=5)
        b = small_network(n_nodes=11, minutes=5)
        assert _cache_key(a) != _cache_key(b)
        assert _cache_key(a) == _cache_key(small_network(n_nodes=10, minutes=5))

    def test_disturbances_participate(self):
        from repro.simnet.link import Disturbance

        a = small_network(n_nodes=10, minutes=5)
        b = a.with_(disturbances=(Disturbance(0.0, 1.0, 0.5),))
        assert _cache_key(a) != _cache_key(b)

    def test_keys_are_hashable(self):
        hash(_cache_key(small_network(n_nodes=10, minutes=5)))
