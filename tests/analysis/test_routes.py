"""Unit tests for route-evolution analytics."""

import pytest

from repro.analysis.routes import (
    RouteChange,
    churn_hotspots,
    network_churn,
    route_timelines,
    switch_point_counts,
)
from repro.core.refill import Refill
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template


def make_flows(paths_by_packet):
    """Build flows for given true paths via complete synthetic logs."""
    logs: dict[int, list[Event]] = {}
    for packet, path in paths_by_packet.items():
        for a, b in zip(path, path[1:]):
            logs.setdefault(a, []).append(
                Event.make(EventType.TRANS, a, src=a, dst=b, packet=packet)
            )
            logs.setdefault(b, []).append(
                Event.make(EventType.RECV, b, src=a, dst=b, packet=packet)
            )
            logs.setdefault(a, []).append(
                Event.make(EventType.ACK, a, src=a, dst=b, packet=packet)
            )
    refill = Refill(forwarder_template(with_gen=False))
    return refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})


class TestRouteTimelines:
    def test_stable_route_no_changes(self):
        flows = make_flows({
            PacketKey(1, 1): [1, 2, 9],
            PacketKey(1, 2): [1, 2, 9],
            PacketKey(1, 3): [1, 2, 9],
        })
        timelines = route_timelines(flows)
        assert timelines[1].churn == 0.0
        assert timelines[1].changes == []
        assert timelines[1].dominant_path() == (1, 2, 9)

    def test_route_change_detected(self):
        flows = make_flows({
            PacketKey(1, 1): [1, 2, 9],
            PacketKey(1, 2): [1, 3, 9],
            PacketKey(1, 3): [1, 3, 9],
        })
        timeline = route_timelines(flows)[1]
        assert len(timeline.changes) == 1
        change = timeline.changes[0]
        assert change.seq == 2
        assert change.old_path == (1, 2, 9)
        assert change.new_path == (1, 3, 9)
        assert change.divergence_hop == 1
        assert timeline.churn == pytest.approx(0.5)

    def test_sequence_order_not_dict_order(self):
        flows = make_flows({
            PacketKey(1, 3): [1, 2, 9],
            PacketKey(1, 1): [1, 2, 9],
            PacketKey(1, 2): [1, 3, 9],
        })
        timeline = route_timelines(flows)[1]
        assert [seq for seq, _ in timeline.observations] == [1, 2, 3]
        assert len(timeline.changes) == 2  # 1->2 changed, 2->3 changed back

    def test_exclude_pseudo_nodes(self):
        flows = make_flows({
            PacketKey(1, 1): [1, 2, 99],
            PacketKey(1, 2): [1, 2, 99],
        })
        timelines = route_timelines(flows, exclude=frozenset({99}))
        assert timelines[1].dominant_path() == (1, 2)

    def test_min_hops_filter(self):
        flows = make_flows({PacketKey(1, 1): [1, 2]})
        assert route_timelines(flows, min_hops=3) == {}


class TestAggregates:
    def make_timelines(self):
        return route_timelines(make_flows({
            PacketKey(1, 1): [1, 2, 9],
            PacketKey(1, 2): [1, 3, 9],
            PacketKey(5, 1): [5, 6, 9],
            PacketKey(5, 2): [5, 6, 9],
        }))

    def test_network_churn(self):
        timelines = self.make_timelines()
        assert network_churn(timelines) == pytest.approx(0.5)
        assert network_churn({}) == 0.0

    def test_churn_hotspots(self):
        hotspots = churn_hotspots(self.make_timelines(), top=1)
        assert hotspots[0][0] == 1

    def test_switch_point_counts(self):
        counts = switch_point_counts(self.make_timelines())
        # origin 1's route diverged right after node 1
        assert counts[1] == 1
