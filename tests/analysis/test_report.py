"""Unit tests for ASCII report rendering."""

from repro.analysis.report import (
    CAUSE_ORDER,
    render_cause_shares,
    render_daily_composition,
    render_scatter_summary,
    render_spatial,
)
from repro.analysis.spatial import SpatialPoint
from repro.core.diagnosis import LossCause


class TestRenderCauseShares:
    def test_orders_and_rounds(self):
        text = render_cause_shares({
            LossCause.ACKED_LOSS: 38.61,
            LossCause.SERVER_OUTAGE: 22.6,
        })
        lines = text.splitlines()
        assert lines[0].startswith("Loss cause shares")
        # outage listed before acked per figure legend order
        assert text.index("server_outage") < text.index("acked")
        assert "38.6" in text

    def test_zero_share_omitted(self):
        text = render_cause_shares({LossCause.ACKED_LOSS: 100.0})
        assert "timeout" not in text


class TestRenderDaily:
    def test_totals_column(self):
        days = [
            {LossCause.ACKED_LOSS: 2, LossCause.TIMEOUT_LOSS: 1},
            {LossCause.ACKED_LOSS: 4},
        ]
        text = render_daily_composition(days)
        lines = text.splitlines()
        assert lines[1].split("|")[-1].strip() == "total"
        assert lines[-1].split("|")[-1].strip() == "4"
        assert lines[-2].split("|")[-1].strip() == "3"

    def test_unused_causes_not_shown(self):
        days = [{LossCause.ACKED_LOSS: 1}]
        assert "overflow" not in render_daily_composition(days)


class TestRenderSpatial:
    def test_sink_marked(self):
        points = [
            SpatialPoint(5, 1.0, 2.0, 10, True),
            SpatialPoint(3, 0.0, 0.0, 2, False),
        ]
        text = render_spatial(points)
        assert "sink" in text
        assert text.index("5") < text.index("3")  # sorted by count

    def test_top_limit(self):
        points = [SpatialPoint(i, 0.0, 0.0, 100 - i, False) for i in range(30)]
        text = render_spatial(points, top=5)
        assert len(text.splitlines()) == 3 + 5  # title + header + rule + 5


class TestRenderScatter:
    def test_buckets_and_empty(self):
        points = [
            (0.0, 1, LossCause.ACKED_LOSS),
            (50.0, 2, LossCause.ACKED_LOSS),
            (150.0, 3, LossCause.TIMEOUT_LOSS),
        ]
        text = render_scatter_summary(points, window=100.0, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "acked" in lines[1] and "timeout" in lines[1]
        assert render_scatter_summary([], window=10.0, title="X").endswith("(no losses)")

    def test_cause_order_stable(self):
        assert CAUSE_ORDER[0] is LossCause.SERVER_OUTAGE
