"""Tests for link-quality measurement and before/after deltas."""

import pytest

from repro.analysis.deltas import compare_windows, window_diagnosis
from repro.analysis.linkquality import LinkObservation, observe_links, worst_links
from repro.core.diagnosis import LossCause, LossReport
from repro.core.refill import Refill
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template


class TestLinkObservation:
    def test_delivery_ratio(self):
        obs = LinkObservation(1, 2, acked=8, timeouts=2)
        assert obs.delivery_ratio() == pytest.approx(0.8)
        assert LinkObservation(1, 2).delivery_ratio() is None

    def test_prr_estimate_inverts_retry_model(self):
        # timeout fraction 1/16 over 4 retries -> (1-p)^4 = 1/16 -> p = 0.5
        obs = LinkObservation(1, 2, acked=15, timeouts=1)
        assert obs.prr_estimate(max_retries=4) == pytest.approx(0.5, abs=0.01)

    def test_prr_estimate_censored_when_no_timeouts(self):
        few = LinkObservation(1, 2, acked=5)
        many = LinkObservation(1, 2, acked=5000)
        assert few.prr_estimate() < many.prr_estimate() < 1.0

    def test_all_timeouts_gives_zero(self):
        obs = LinkObservation(1, 2, timeouts=4)
        assert obs.prr_estimate() == 0.0
        assert obs.etx_estimate() is None

    def test_etx(self):
        obs = LinkObservation(1, 2, acked=15, timeouts=1)
        assert obs.etx_estimate(max_retries=4) == pytest.approx(2.0, abs=0.05)


class TestObserveLinks:
    def make_flows(self):
        pkt1, pkt2 = PacketKey(1, 1), PacketKey(1, 2)
        logs = {
            1: NodeLog(1, [
                Event.make("trans", 1, src=1, dst=2, packet=pkt1),
                Event.make("ack_recvd", 1, src=1, dst=2, packet=pkt1),
                Event.make("trans", 1, src=1, dst=2, packet=pkt2),
                Event.make("timeout", 1, src=1, dst=2, packet=pkt2),
            ]),
            2: NodeLog(2, [Event.make("recv", 2, src=1, dst=2, packet=pkt1)]),
        }
        return Refill(forwarder_template(with_gen=False)).reconstruct(logs)

    def test_counts(self):
        observations = observe_links(self.make_flows())
        link = observations[(1, 2)]
        assert link.acked == 1
        assert link.timeouts == 1
        assert link.arrivals >= 1
        assert link.delivery_ratio() == pytest.approx(0.5)

    def test_inferred_acks_excluded(self):
        # only node 3's recv survives: the ack on (2,3) is inferred and must
        # not count as radio evidence
        pkt = PacketKey(1, 1)
        logs = {3: NodeLog(3, [Event.make("recv", 3, src=2, dst=3, packet=pkt)])}
        flows = Refill(forwarder_template(with_gen=False)).reconstruct(logs)
        observations = observe_links(flows)
        assert observations[(2, 3)].acked == 0
        assert observations[(2, 3)].arrivals == 1

    def test_worst_links_ranking(self):
        observations = {
            (1, 2): LinkObservation(1, 2, acked=90, timeouts=10),
            (3, 4): LinkObservation(3, 4, acked=50, timeouts=50),
            (5, 6): LinkObservation(5, 6, acked=3),  # under min_sends
        }
        worst = worst_links(observations, min_sends=10, top=5)
        assert [(
            o.src, o.dst) for o in worst] == [(3, 4), (1, 2)]


class TestLinkQualityAgainstGroundTruth:
    def test_estimates_track_true_link_model(self):
        """End to end: flow-derived delivery ratios reflect true PRRs."""
        from repro.analysis.pipeline import evaluate
        from repro.simnet.scenarios import citysee

        result = evaluate(citysee(n_nodes=60, days=2, seed=43))
        observations = observe_links(result.flows)
        # rebuild the true link model via the sim's own deterministic parts
        from repro.simnet.network import Network

        net = Network(result.sim.params)
        checked = 0
        for (src, dst), obs in observations.items():
            if obs.sends < 30 or dst == result.base_station:
                continue
            if dst not in net.topology.positions or src not in net.topology.positions:
                continue
            true_prr = net.link.base_prr(src, dst)
            ratio = obs.delivery_ratio()
            # with 30 retries, decent links deliver ~always; the claim is
            # directional: good true links never *measure* terrible
            if true_prr > 0.5:
                assert ratio > 0.8, (src, dst, true_prr, ratio)
                checked += 1
        assert checked > 5


class TestDeltas:
    def make_reports(self):
        reports = {}
        est = {}
        # before boundary (t<100): 10 packets, 5 lost at the sink
        for i in range(10):
            pkt = PacketKey(1, i)
            lost = i < 5
            reports[pkt] = LossReport(
                LossCause.RECEIVED_LOSS if lost else LossCause.DELIVERED, 50
            )
            est[pkt] = 10.0 * i
        # after boundary: 10 packets, 1 lost by timeout
        for i in range(10, 20):
            pkt = PacketKey(1, i)
            lost = i == 10
            reports[pkt] = LossReport(
                LossCause.TIMEOUT_LOSS if lost else LossCause.DELIVERED, 3
            )
            est[pkt] = 100.0 + 10.0 * (i - 10)
        return reports, est

    def test_window_diagnosis(self):
        reports, est = self.make_reports()
        window = window_diagnosis(reports, est, label="w", start=0, end=100)
        assert window.packets == 10
        assert window.lost == 5
        assert window.loss_rate == pytest.approx(0.5)
        assert window.cause_share(LossCause.RECEIVED_LOSS) == 1.0

    def test_compare_windows(self):
        reports, est = self.make_reports()
        delta = compare_windows(reports, est, boundary=100.0)
        assert delta.before.lost == 5 and delta.after.lost == 1
        assert delta.improvement_factor == pytest.approx(5.0)
        assert delta.loss_rate_change == pytest.approx(-0.4)
        assert delta.biggest_mover() is LossCause.RECEIVED_LOSS
        assert "Before/after" in delta.render()

    def test_boundary_validation(self):
        reports, est = self.make_reports()
        with pytest.raises(ValueError):
            compare_windows(reports, est, boundary=0.0)

    def test_unplaceable_packets_excluded(self):
        reports = {PacketKey(1, 1): LossReport(LossCause.DELIVERED, 9)}
        delta = compare_windows(reports, {PacketKey(1, 1): None}, boundary=5.0)
        assert delta.before.packets == 0 and delta.after.packets == 0
        assert delta.improvement_factor is None

    def test_sink_fix_visible_end_to_end(self):
        """The paper's day-23 intervention shows up as an improvement."""
        from repro.analysis.pipeline import evaluate
        from repro.simnet.scenarios import DAY, citysee

        # outages off: a clean causal experiment on the serial fix
        result = evaluate(
            citysee(
                n_nodes=60, days=8, seed=47, sink_fix_day=4,
                snow_days=(), outage_fraction=0.0,
            )
        )
        delta = compare_windows(
            result.reports, result.est_loss_times, boundary=4 * DAY
        )
        assert delta.improvement_factor is not None
        assert delta.improvement_factor > 1.5
        # the fix moved in-node losses at the sink, exactly as in Fig. 6
        assert delta.biggest_mover() in (
            LossCause.RECEIVED_LOSS,
            LossCause.ACKED_LOSS,
        )
