"""Integration tests for the evaluation pipeline and accuracy scoring."""

import pytest

from repro.analysis.accuracy import (
    acceptable_causes,
    cause_accuracy,
    event_recovery,
    ordering_accuracy,
    score_run,
)
from repro.analysis.pipeline import default_loss_spec, evaluate, run_simulation
from repro.core.diagnosis import LossCause
from repro.lognet.loss import LogLossSpec
from repro.simnet.scenarios import citysee, small_network
from repro.simnet.truth import TrueCause, TrueFate


@pytest.fixture(scope="module")
def small_eval():
    return evaluate(small_network(n_nodes=25, minutes=30))


class TestPipeline:
    def test_all_logged_packets_reconstructed(self, small_eval):
        logged = set()
        for log in small_eval.collected_logs.values():
            logged |= log.packets()
        assert set(small_eval.flows) == logged

    def test_reports_cover_flows(self, small_eval):
        assert set(small_eval.reports) == set(small_eval.flows)

    def test_delivered_packets_diagnosed_delivered(self, small_eval):
        truth = small_eval.sim.truth
        wrong = [
            p
            for p, r in small_eval.reports.items()
            if p in truth.fates and truth.fates[p].delivered and r.lost
        ]
        # a delivered packet can only look lost if the BS record itself is
        # gone; the BS log is immune, so there are none
        assert wrong == []

    def test_simulation_cache_reuses_runs(self):
        params = small_network(n_nodes=12, minutes=5)
        a = run_simulation(params)
        b = run_simulation(params)
        assert a is b
        c = run_simulation(params, cache=False)
        assert c is not a

    def test_lossless_spec_gives_perfect_event_recall(self):
        params = small_network(n_nodes=16, minutes=15)
        result = evaluate(params, loss_spec=LogLossSpec.lossless())
        precision, recall = event_recovery(
            result.flows, result.collected_logs, result.sim.truth
        )
        # nothing was lost, so nothing should be inferred
        assert recall == 1.0
        total_inferred = sum(len(f.inferred_events()) for f in result.flows.values())
        # only the unloggable serial-hop trans may be inferred
        non_serial = [
            e
            for f in result.flows.values()
            for e in f.inferred_events()
            if e.dst != result.base_station
        ]
        assert non_serial == []


class TestAcceptableCauses:
    def test_mappings(self):
        sink = 50
        fate = TrueFate(TrueCause.SERIAL, sink, 1.0)
        acc = acceptable_causes(fate, sink=sink)
        assert (LossCause.RECEIVED_LOSS, sink) in acc
        assert (LossCause.ACKED_LOSS, sink) in acc
        fate = TrueFate(TrueCause.OUTAGE, 99, 1.0)
        assert acceptable_causes(fate, sink=sink) == {(LossCause.SERVER_OUTAGE, None)}
        assert acceptable_causes(fate, sink=sink, outage_attributed=False) == {
            (LossCause.RECEIVED_LOSS, sink),
            (LossCause.ACKED_LOSS, sink),
        }
        fate = TrueFate(TrueCause.TIMEOUT, 3, 1.0)
        assert acceptable_causes(fate, sink=sink) == {(LossCause.TIMEOUT_LOSS, 3)}
        fate = TrueFate(TrueCause.TTL, 3, 1.0)
        assert acceptable_causes(fate, sink=sink) == {(LossCause.UNKNOWN, None)}


class TestAccuracy:
    def test_small_run_quality(self, small_eval):
        acc = score_run(
            small_eval.flows,
            small_eval.reports,
            small_eval.collected_logs,
            small_eval.sim.truth,
            sink=small_eval.sink,
        )
        assert acc.coverage > 0.95
        assert acc.cause_accuracy > 0.85
        assert acc.event_precision > 0.85
        assert acc.event_recall > 0.6
        assert acc.ordering_accuracy > 0.85

    def test_citysee_run_quality(self):
        result = evaluate(citysee(n_nodes=80, days=3))
        acc = score_run(
            result.flows,
            result.reports,
            result.collected_logs,
            result.sim.truth,
            sink=result.sink,
        )
        assert acc.cause_accuracy > 0.9
        assert acc.position_accuracy > 0.8
        assert acc.event_precision > 0.9

    def test_ordering_accuracy_perfect_on_lossless(self):
        params = small_network(n_nodes=16, minutes=15)
        result = evaluate(params, loss_spec=LogLossSpec.lossless())
        assert ordering_accuracy(result.flows, result.sim.truth) > 0.99

    def test_confusion_matrix_populated(self, small_eval):
        _, _, confusion = cause_accuracy(
            small_eval.reports, small_eval.sim.truth, sink=small_eval.sink
        )
        assert (TrueCause.DELIVERED, LossCause.DELIVERED) in confusion
