"""Tests for the parameter-sweep harness."""

import pytest

from repro.analysis.sweeps import (
    accuracy_metrics,
    delivery_metrics,
    run_sweep,
)
from repro.lognet.loss import LogLossSpec
from repro.simnet.network import NodeParams
from repro.simnet.scenarios import small_network


@pytest.fixture(scope="module")
def task_fail_sweep():
    base = small_network(n_nodes=16, minutes=10)
    return run_sweep(
        "task_fail_p",
        base,
        values=[0.0, 0.1],
        vary=lambda params, p: params.with_(node=NodeParams(task_fail_p=p)),
        metric_sets=(accuracy_metrics, delivery_metrics),
        metrics={"lost": lambda r: sum(1 for x in r.reports.values() if x.lost)},
    )


class TestRunSweep:
    def test_points_in_order(self, task_fail_sweep):
        assert [p.value for p in task_fail_sweep.points] == [0.0, 0.1]

    def test_metrics_extracted(self, task_fail_sweep):
        point = task_fail_sweep.points[0]
        for key in ("cause_acc", "delivery_ratio", "lost", "packets"):
            assert key in point.metrics

    def test_sweep_effect_visible(self, task_fail_sweep):
        # 10% task failures must lower delivery vs 0%
        series = dict(task_fail_sweep.series("delivery_ratio"))
        assert series[0.1] < series[0.0]

    def test_series(self, task_fail_sweep):
        series = task_fail_sweep.series("packets")
        assert len(series) == 2
        assert all(isinstance(v, int) for _, v in series)

    def test_render(self, task_fail_sweep):
        text = task_fail_sweep.render()
        assert "Sweep: task_fail_p" in text
        assert "delivery_ratio" in text

    def test_loss_spec_for(self):
        base = small_network(n_nodes=12, minutes=6)
        sweep = run_sweep(
            "write_fail",
            base,
            values=[0.0, 0.5],
            vary=lambda params, _: params,
            loss_spec_for=lambda p: LogLossSpec(write_fail_p=p),
        )
        recalls = dict(sweep.series("event_recall"))
        assert recalls[0.0] == 1.0
        assert recalls[0.5] < 1.0

    def test_empty_sweep_renders(self):
        base = small_network(n_nodes=12, minutes=6)
        sweep = run_sweep("nothing", base, values=[], vary=lambda p, v: p)
        assert "(empty sweep)" in sweep.render()
