"""Tests for the analyzer-comparison harness."""

import pytest

from repro.analysis.comparison import AnalyzerScore, ComparisonResult, compare_analyzers
from repro.analysis.pipeline import evaluate
from repro.simnet.scenarios import small_network


@pytest.fixture(scope="module")
def comparison():
    return compare_analyzers(evaluate(small_network(n_nodes=25, minutes=30)))


class TestCompareAnalyzers:
    def test_all_analyzers_scored(self, comparison):
        names = {s.name for s in comparison.scores}
        assert names == {"REFILL", "NetCheck-style", "time-correlation"}

    def test_scores_bounded(self, comparison):
        for score in comparison.scores:
            assert 0.0 <= score.cause_accuracy <= 1.0
            assert 0.0 <= score.position_accuracy <= 1.0

    def test_refill_dominates_on_positions(self, comparison):
        refill = comparison.by_name("REFILL")
        for other in ("NetCheck-style", "time-correlation"):
            assert refill.position_accuracy >= comparison.by_name(other).position_accuracy

    def test_individual_logs_unmergeable(self, comparison):
        assert comparison.wit_mergeable_fraction == 0.0

    def test_unknown_name_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.by_name("nope")

    def test_render(self, comparison):
        text = comparison.render()
        assert "REFILL" in text and "Wit-style" in text


class TestDominanceHelper:
    def make(self, refill=(0.9, 0.9), other=(0.5, 0.5)):
        return ComparisonResult(
            scores=[
                AnalyzerScore("REFILL", *refill),
                AnalyzerScore("NetCheck-style", *other),
            ],
            wit_mergeable_fraction=0.0,
        )

    def test_dominates(self):
        assert self.make().refill_dominates(margin=0.2)
        assert not self.make(refill=(0.6, 0.9)).refill_dominates(margin=0.2)
        assert not self.make(other=(0.95, 0.1)).refill_dominates()
