"""Unit + integration tests for the §V-D implications module."""

import pytest

from repro.analysis.implications import (
    Implications,
    check_citysee_pathologies,
    derive_implications,
)
from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey

SINK = 50


def report(cause, position):
    return LossReport(cause, position)


class TestDeriveImplications:
    def make_inputs(self):
        reports = {
            # sink-bound in-node losses from many different sources
            PacketKey(1, 1): report(LossCause.RECEIVED_LOSS, SINK),
            PacketKey(2, 1): report(LossCause.ACKED_LOSS, SINK),
            PacketKey(3, 1): report(LossCause.ACKED_LOSS, SINK),
            PacketKey(4, 1): report(LossCause.RECEIVED_LOSS, SINK),
            # a link loss elsewhere
            PacketKey(5, 1): report(LossCause.TIMEOUT_LOSS, 7),
            # an outage
            PacketKey(6, 1): report(LossCause.SERVER_OUTAGE, 99),
            # a delivered packet: ignored
            PacketKey(7, 1): report(LossCause.DELIVERED, 99),
        }
        est = {p: 100.0 * i for i, p in enumerate(sorted(reports))}
        nodes = list(range(1, 10)) + [SINK]
        return reports, est, nodes

    def test_quantities(self):
        reports, est, nodes = self.make_inputs()
        imp = derive_implications(reports, est, nodes=nodes, sink=SINK, window=250.0)
        # positions concentrate on the sink; sources are all distinct
        assert imp.position_gini > imp.source_gini
        # 4 node losses : 1 link loss
        assert imp.node_vs_link_ratio == pytest.approx(4.0)
        # last mile: 4 sink in-node + 1 outage of 6 losses
        assert imp.last_mile_share == pytest.approx(5 / 6)
        # acked: 2 of 6
        assert imp.acked_loss_share == pytest.approx(2 / 6)

    def test_no_link_losses_ratio_none(self):
        reports = {PacketKey(1, 1): report(LossCause.RECEIVED_LOSS, 3)}
        imp = derive_implications(
            reports, {PacketKey(1, 1): 0.0}, nodes=[1, 2, 3], sink=9, window=10.0
        )
        assert imp.node_vs_link_ratio is None

    def test_rows_render(self):
        reports, est, nodes = self.make_inputs()
        imp = derive_implications(reports, est, nodes=nodes, sink=SINK, window=250.0)
        rows = imp.rows()
        assert len(rows) == 5
        assert all(isinstance(k, str) and isinstance(v, str) for k, v in rows)


class TestCityseePathologies:
    def test_verdicts(self):
        imp = Implications(
            source_gini=0.1,
            position_gini=0.9,
            cause_cooccurrence=0.5,
            node_vs_link_ratio=10.0,
            last_mile_share=0.6,
            acked_loss_share=0.4,
        )
        verdicts = check_citysee_pathologies(imp)
        assert all(verdicts.values())

    def test_healthy_network_fails_checks(self):
        imp = Implications(
            source_gini=0.3,
            position_gini=0.35,
            cause_cooccurrence=0.0,
            node_vs_link_ratio=0.5,
            last_mile_share=0.05,
            acked_loss_share=0.02,
        )
        verdicts = check_citysee_pathologies(imp)
        assert not any(
            verdicts[k]
            for k in (
                "positions_concentrate_vs_sources",
                "causes_cooccur",
                "node_losses_dominate_link_losses",
                "last_mile_is_significant",
                "hardware_acks_overpromise",
            )
        )


class TestEndToEnd:
    def test_simulated_citysee_exhibits_the_pathologies(self):
        from repro.analysis.pipeline import evaluate
        from repro.simnet.scenarios import DAY, citysee

        result = evaluate(citysee(n_nodes=80, days=3, seed=19))
        imp = derive_implications(
            result.reports,
            result.est_loss_times,
            nodes=result.sim.topology.nodes,
            sink=result.sink,
            window=DAY / 12,
        )
        verdicts = check_citysee_pathologies(imp)
        assert verdicts["positions_concentrate_vs_sources"]
        assert verdicts["node_losses_dominate_link_losses"]
        assert verdicts["last_mile_is_significant"]
        assert verdicts["hardware_acks_overpromise"]
