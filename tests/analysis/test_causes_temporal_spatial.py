"""Unit tests for the figure analytics (causes, temporal, spatial)."""

import pytest

from repro.analysis.causes import (
    attribute_server_outages,
    cause_counts,
    cause_shares,
    daily_composition,
    daily_loss_totals,
    sink_split,
)
from repro.analysis.spatial import (
    loss_share_of_top_nodes,
    received_loss_map,
    top_loss_node,
)
from repro.analysis.temporal import (
    burstiness,
    cause_marker_counts,
    concentration_gini,
    loss_scatter,
    per_node_loss_counts,
)
from repro.core.diagnosis import LossCause, LossReport
from repro.events.packet import PacketKey
from repro.simnet.topology import make_grid_topology
from repro.util.rng import RngStreams

SINK = 5
BS = 99


def report(cause, position):
    return LossReport(cause, position)


class TestOutageAttribution:
    def make_reports(self):
        return {
            PacketKey(1, 1): report(LossCause.RECEIVED_LOSS, SINK),
            PacketKey(1, 2): report(LossCause.ACKED_LOSS, SINK),
            PacketKey(2, 1): report(LossCause.RECEIVED_LOSS, 7),  # not sink
            PacketKey(2, 2): report(LossCause.TIMEOUT_LOSS, SINK),  # wrong kind
            PacketKey(3, 1): report(LossCause.DELIVERED, BS),
        }

    def test_window_and_position_filtering(self):
        est = {
            PacketKey(1, 1): 150.0,  # in window, at sink -> outage
            PacketKey(1, 2): 500.0,  # outside window
            PacketKey(2, 1): 150.0,  # in window but not at sink
            PacketKey(2, 2): 150.0,  # in window, at sink, but timeout
            PacketKey(3, 1): 150.0,
        }
        out = attribute_server_outages(
            self.make_reports(), est, outages=[(100.0, 200.0)], sink=SINK, base_station=BS
        )
        assert out[PacketKey(1, 1)].cause is LossCause.SERVER_OUTAGE
        assert out[PacketKey(1, 1)].position == BS
        assert out[PacketKey(1, 2)].cause is LossCause.ACKED_LOSS
        assert out[PacketKey(2, 1)].cause is LossCause.RECEIVED_LOSS
        assert out[PacketKey(2, 2)].cause is LossCause.TIMEOUT_LOSS
        assert out[PacketKey(3, 1)].cause is LossCause.DELIVERED

    def test_no_outages_identity(self):
        reports = self.make_reports()
        assert attribute_server_outages(reports, {}, outages=[], sink=SINK, base_station=BS) == reports

    def test_missing_estimate_not_attributed(self):
        reports = {PacketKey(1, 1): report(LossCause.RECEIVED_LOSS, SINK)}
        out = attribute_server_outages(
            reports, {PacketKey(1, 1): None}, outages=[(0.0, 1e9)], sink=SINK, base_station=BS
        )
        assert out[PacketKey(1, 1)].cause is LossCause.RECEIVED_LOSS


class TestCauseComposition:
    def make_reports(self):
        return {
            PacketKey(1, 1): report(LossCause.RECEIVED_LOSS, SINK),
            PacketKey(1, 2): report(LossCause.RECEIVED_LOSS, 3),
            PacketKey(1, 3): report(LossCause.ACKED_LOSS, SINK),
            PacketKey(1, 4): report(LossCause.TIMEOUT_LOSS, 2),
            PacketKey(1, 5): report(LossCause.DELIVERED, BS),
        }

    def test_counts_exclude_delivered(self):
        counts = cause_counts(self.make_reports())
        assert sum(counts.values()) == 4

    def test_shares_sum_to_100(self):
        shares = cause_shares(self.make_reports())
        assert sum(shares.values()) == pytest.approx(100.0)
        assert shares[LossCause.RECEIVED_LOSS] == pytest.approx(50.0)

    def test_shares_empty(self):
        assert cause_shares({PacketKey(1, 1): report(LossCause.DELIVERED, BS)}) == {}

    def test_sink_split_matches_paper_buckets(self):
        split = sink_split(self.make_reports(), SINK)
        assert split["received_sink"] == pytest.approx(25.0)
        assert split["received_other"] == pytest.approx(25.0)
        assert split["acked_sink"] == pytest.approx(25.0)
        assert split["acked_other"] == pytest.approx(0.0)

    def test_daily_composition_buckets_by_estimate(self):
        reports = self.make_reports()
        est = {
            PacketKey(1, 1): 50.0,
            PacketKey(1, 2): 150.0,
            PacketKey(1, 3): 150.0,
            PacketKey(1, 4): None,  # unplaceable -> dropped
            PacketKey(1, 5): 50.0,
        }
        days = daily_composition(reports, est, day_seconds=100.0, n_days=2)
        assert daily_loss_totals(days) == [1, 2]
        assert days[1][LossCause.ACKED_LOSS] == 1


class TestTemporal:
    def make_points(self):
        reports = {
            PacketKey(1, 1): report(LossCause.TIMEOUT_LOSS, 4),
            PacketKey(2, 1): report(LossCause.TIMEOUT_LOSS, 4),
            PacketKey(3, 1): report(LossCause.RECEIVED_LOSS, SINK),
            PacketKey(4, 1): report(LossCause.DELIVERED, BS),
        }
        est = {
            PacketKey(1, 1): 100.0,
            PacketKey(2, 1): 101.0,
            PacketKey(3, 1): 900.0,
            PacketKey(4, 1): 100.0,
        }
        return reports, est

    def test_scatter_axes(self):
        reports, est = self.make_points()
        by_source = loss_scatter(reports, est, axis="source")
        by_position = loss_scatter(reports, est, axis="position")
        assert [(n for _, n, _ in by_source)] is not None
        assert {n for _, n, _ in by_source} == {1, 2, 3}
        assert {n for _, n, _ in by_position} == {4, SINK}
        with pytest.raises(ValueError):
            loss_scatter(reports, est, axis="bogus")

    def test_scatter_excludes_delivered_and_unplaced(self):
        reports, est = self.make_points()
        est[PacketKey(1, 1)] = None
        points = loss_scatter(reports, est, axis="source")
        assert len(points) == 2

    def test_gini_extremes(self):
        assert concentration_gini([5, 5, 5, 5]) == pytest.approx(0.0)
        concentrated = concentration_gini([0] * 99 + [100])
        assert concentrated > 0.95
        assert concentration_gini([]) == 0.0

    def test_per_node_counts_include_zeros(self):
        reports, est = self.make_points()
        points = loss_scatter(reports, est, axis="position")
        counts = per_node_loss_counts(points, all_nodes=[1, 2, 3, 4, SINK])
        assert counts[1] == 0 and counts[4] == 2

    def test_burstiness(self):
        points = [(t, 1, LossCause.TIMEOUT_LOSS) for t in (0.0, 1.0, 2.0, 500.0)]
        assert burstiness(points, LossCause.TIMEOUT_LOSS, window=10.0, top_k=1) == pytest.approx(0.75)
        assert burstiness(points, LossCause.DUP_LOSS, window=10.0) == 0.0

    def test_marker_counts(self):
        reports, est = self.make_points()
        counts = cause_marker_counts(loss_scatter(reports, est, axis="source"))
        assert counts[LossCause.TIMEOUT_LOSS] == 2


class TestSpatial:
    def test_received_loss_map_and_sink_flag(self):
        topo = make_grid_topology(9, RngStreams(0))
        sink = topo.sink
        other = next(n for n in topo.nodes if n != sink)
        reports = {
            PacketKey(1, i): report(LossCause.RECEIVED_LOSS, sink) for i in range(5)
        }
        reports[PacketKey(2, 1)] = report(LossCause.ACKED_LOSS, other)
        points = received_loss_map(reports, topo)
        assert points[0].node == sink and points[0].is_sink
        assert points[0].count == 5
        assert top_loss_node(points).node == sink
        assert loss_share_of_top_nodes(points, 1) == pytest.approx(5 / 6)

    def test_strict_received_only(self):
        topo = make_grid_topology(9, RngStreams(0))
        reports = {
            PacketKey(1, 1): report(LossCause.ACKED_LOSS, topo.sink),
        }
        points = received_loss_map(reports, topo, causes=(LossCause.RECEIVED_LOSS,))
        assert points == []

    def test_empty(self):
        topo = make_grid_topology(9, RngStreams(0))
        assert top_loss_node(received_loss_map({}, topo)) is None
        assert loss_share_of_top_nodes([], 3) == 0.0
