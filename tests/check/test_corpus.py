"""Unit tests for the log-corpus lint."""

import json

import pytest

from repro.check import DeploymentSpec, check_corpus
from repro.check.findings import Severity
from repro.fsm.templates import chain_template


@pytest.fixture()
def spec():
    return DeploymentSpec(roles={"line": chain_template("line", ["gen", "e1", "e2"])})


def write_store(tmp_path, files, metadata=None):
    if metadata is not False:
        payload = metadata or {"sink": 1, "base_station": 1, "gen_interval": 60.0}
        (tmp_path / "operations.json").write_text(json.dumps(payload))
    for name, text in files.items():
        (tmp_path / name).write_text(text)
    return tmp_path


def by_code(findings, code):
    return [f for f in findings if f.code == code]


class TestCorpusLint:
    def test_clean_store_has_no_findings(self, tmp_path, spec):
        store = write_store(
            tmp_path,
            {"node_0001.log": "node=1 type=e1 pkt=p1.0 t=1.0\n"
                              "node=1 type=e2 pkt=p1.0 t=2.0\n"},
        )
        findings, stats = check_corpus(store, spec)
        assert findings == []
        assert stats == {"files": 1, "lines": 2, "events": 2, "corrupt": 0}

    def test_corrupt_lines_become_lc001_errors_with_line_numbers(
        self, tmp_path, spec
    ):
        store = write_store(
            tmp_path,
            {"node_0001.log": "node=1 type=e1\n@@@garbage@@@\nnode=1 type=e2\n"},
        )
        findings, stats = check_corpus(store, spec)
        lc001 = by_code(findings, "LC001")
        assert len(lc001) == 1
        assert lc001[0].severity is Severity.ERROR
        assert lc001[0].location == "node_0001.log:2"
        assert stats["corrupt"] == 1

    def test_node_mismatch_is_lc002(self, tmp_path, spec):
        store = write_store(
            tmp_path, {"node_0001.log": "node=9 type=e1\n"}
        )
        findings, _ = check_corpus(store, spec)
        assert by_code(findings, "LC002")

    def test_unknown_label_is_lc003_warning(self, tmp_path, spec):
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=wat\n"}
        )
        findings, _ = check_corpus(store, spec)
        lc003 = by_code(findings, "LC003")
        assert lc003 and lc003[0].severity is Severity.WARNING

    def test_aux_labels_are_known_vocabulary(self, tmp_path):
        aux_spec = DeploymentSpec(
            roles={"line": chain_template("line", ["gen", "e1", "e2"])},
            aux_labels=frozenset({"telemetry"}),
        )
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=telemetry\n"}
        )
        findings, _ = check_corpus(store, aux_spec)
        assert not by_code(findings, "LC003")

    def test_no_spec_skips_vocabulary_checks(self, tmp_path):
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=wat\n"}
        )
        findings, _ = check_corpus(store, None)
        assert not by_code(findings, "LC003")

    def test_gen_off_origin_is_lc004(self, tmp_path, spec):
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=gen pkt=p7.0\n"}
        )
        findings, _ = check_corpus(store, spec)
        lc004 = by_code(findings, "LC004")
        assert lc004 and "origin 7" in lc004[0].message

    def test_negative_packet_key_is_lc004(self, tmp_path, spec):
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=e1 pkt=p-2.0\n"}
        )
        findings, _ = check_corpus(store, spec)
        assert by_code(findings, "LC004")

    def test_timestamp_regression_is_lc005(self, tmp_path, spec):
        store = write_store(
            tmp_path,
            {"node_0001.log": "node=1 type=e1 t=5.0\nnode=1 type=e2 t=3.0\n"},
        )
        findings, _ = check_corpus(store, spec)
        lc005 = by_code(findings, "LC005")
        assert lc005 and "precedes" in lc005[0].message

    def test_gen_seq_must_increase_in_origin_log(self, tmp_path, spec):
        store = write_store(
            tmp_path,
            {"node_0001.log": "node=1 type=gen pkt=p1.3\nnode=1 type=gen pkt=p1.3\n"},
        )
        findings, _ = check_corpus(store, spec)
        assert by_code(findings, "LC005")

    def test_missing_metadata_is_lc006(self, tmp_path, spec):
        store = write_store(
            tmp_path, {"node_0001.log": "node=1 type=e1\n"}, metadata=False
        )
        findings, _ = check_corpus(store, spec)
        lc006 = by_code(findings, "LC006")
        assert lc006 and lc006[0].severity is Severity.ERROR

    def test_unreadable_metadata_is_lc006(self, tmp_path, spec):
        (tmp_path / "operations.json").write_text("{not json")
        (tmp_path / "node_0001.log").write_text("node=1 type=e1\n")
        findings, _ = check_corpus(tmp_path, spec)
        assert by_code(findings, "LC006")

    def test_cap_suppresses_floods_with_summary(self, tmp_path, spec):
        lines = "\n".join("@@@" for _ in range(30)) + "\n"
        store = write_store(tmp_path, {"node_0001.log": lines})
        findings, stats = check_corpus(store, spec, max_per_rule=5)
        assert len(by_code(findings, "LC001")) == 5
        lc007 = by_code(findings, "LC007")
        assert lc007 and "25 additional LC001" in lc007[0].message
        assert stats["corrupt"] == 30


class TestStoreAgreement:
    def test_corpus_corrupt_count_matches_load_store(self, tmp_path, spec):
        """The lint and the tolerant loader must agree on corruption."""
        from repro.events.store import load_store

        store = write_store(
            tmp_path,
            {
                "node_0001.log": "node=1 type=e1\nbroken line\nnode=2 type=e1\n",
                "node_0002.log": "node=2 type=e2\n???\n",
            },
        )
        findings, stats = check_corpus(store, spec)
        loaded = load_store(store)
        assert stats["corrupt"] == sum(loaded.corrupt_lines.values())
