"""Unit tests for the cross-FSM deployment analyzers."""

from repro.check import DeploymentSpec, check_templates, load_spec
from repro.check.findings import Severity
from repro.fsm.graph import TransitionGraph
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import (
    FsmTemplate,
    chain_template,
    dissemination_templates,
    forwarder_template,
)


def codes(findings, severity=None):
    return {
        f.code
        for f in findings
        if severity is None or f.severity is severity
    }


class TestBuiltinSpecsAreClean:
    def test_ctp_spec_has_no_errors(self):
        findings = check_templates(load_spec("ctp"))
        assert not codes(findings, Severity.ERROR)

    def test_ctp_ambiguity_softened_by_admissibility(self):
        # The forwarder's IDLE->SENT tie (gen vs recv) is real but resolved
        # at inference time by the admissibility predicate: info, not warning.
        findings = check_templates(load_spec("ctp"))
        xf003 = [f for f in findings if f.code == "XF003"]
        assert xf003
        assert all(f.severity is Severity.INFO for f in xf003)

    def test_ctp_selector_recursion_reported_as_info(self):
        findings = check_templates(load_spec("ctp"))
        xf007 = [f for f in findings if f.code == "XF007"]
        assert xf007 and all(f.severity is Severity.INFO for f in xf007)

    def test_dissemination_spec_has_no_errors(self):
        findings = check_templates(load_spec("dissemination"))
        assert not codes(findings, Severity.ERROR)


class TestPrereqResolution:
    def test_unresolvable_selector_state_is_error(self):
        t = FsmTemplate(
            "solo",
            TransitionGraph(["a", "b"], [("a", "b", "e")], "a"),
            prereqs={"e": [PrereqRule(Peer.SRC, "GHOST")]},
        )
        findings = check_templates(DeploymentSpec(roles={"solo": t}))
        assert "XF001" in codes(findings, Severity.ERROR)

    def test_cross_role_state_resolves(self):
        factory = dissemination_templates(seeder=0)
        spec = DeploymentSpec(
            roles={"seeder": factory(0), "receiver": factory(1)},
            node_roles={0: "seeder"},
        )
        findings = check_templates(spec)
        assert "XF001" not in codes(findings)
        assert "XF005" not in codes(findings)

    def test_explicit_node_state_missing_from_peer_is_error(self):
        a = chain_template(
            "a", ["a1"], prereqs={"a1": [PrereqRule(2, "MISSING")]}, first_state=0
        )
        b = chain_template("b", ["b1"], first_state=2)
        spec = DeploymentSpec(
            roles={"a": a, "b": b}, node_roles={1: "a", 2: "b"}
        )
        findings = check_templates(spec)
        xf005 = [f for f in findings if f.code == "XF005"]
        assert xf005 and all(f.severity is Severity.ERROR for f in xf005)
        assert any("MISSING" in f.message for f in xf005)

    def test_rule_for_unemitted_label_is_warning(self):
        t = FsmTemplate(
            "solo",
            TransitionGraph(["a", "b"], [("a", "b", "e")], "a"),
            prereqs={"phantom": [PrereqRule(Peer.SRC, "a")]},
        )
        findings = check_templates(DeploymentSpec(roles={"solo": t}))
        assert "XF006" in codes(findings, Severity.WARNING)


class TestPrereqCycles:
    def _cyclic_spec(self):
        a = chain_template(
            "role-a", ["a1", "a2"],
            prereqs={"a1": [PrereqRule(2, "s4")]}, first_state=0,
        )
        b = chain_template(
            "role-b", ["b1", "b2"],
            prereqs={"b1": [PrereqRule(1, "s1")]}, first_state=3,
        )
        return DeploymentSpec(
            roles={"role-a": a, "role-b": b},
            node_roles={1: "role-a", 2: "role-b"},
        )

    def test_explicit_node_cycle_is_error(self):
        findings = check_templates(self._cyclic_spec())
        xf002 = [f for f in findings if f.code == "XF002"]
        assert xf002 and all(f.severity is Severity.ERROR for f in xf002)
        assert any("node 1:a1" in f.message and "node 2:b1" in f.message
                   for f in xf002)

    def test_acyclic_explicit_rules_pass(self):
        # one-directional dependency: no cycle
        a = chain_template(
            "role-a", ["a1"], prereqs={"a1": [PrereqRule(2, "s2")]}, first_state=0
        )
        b = chain_template("role-b", ["b1"], first_state=1)  # s1 -b1-> s2
        spec = DeploymentSpec(
            roles={"role-a": a, "role-b": b},
            node_roles={1: "role-a", 2: "role-b"},
        )
        assert "XF002" not in codes(check_templates(spec))

    def test_self_referential_rule_is_cycle(self):
        # a1 on node 1 requires node 1 itself at a *later* state: driving
        # there replays a1, re-demanding itself.
        a = chain_template(
            "role-a", ["a1", "a2"],
            prereqs={"a2": [PrereqRule(1, "s2")]}, first_state=0,
        )
        spec = DeploymentSpec(roles={"role-a": a}, node_roles={1: "role-a"})
        assert "XF002" in codes(check_templates(spec), Severity.ERROR)


class TestAmbiguousJumps:
    def test_diamond_tie_flagged_as_warning(self):
        t = FsmTemplate(
            "diamond",
            TransitionGraph(
                ["x0", "x1a", "x1b", "x2"],
                [
                    ("x0", "x1a", "left"),
                    ("x0", "x1b", "right"),
                    ("x1a", "x2", "fin"),
                    ("x1b", "x2", "fin"),
                ],
                "x0",
            ),
        )
        findings = check_templates(DeploymentSpec(roles={"d": t}))
        xf003 = [f for f in findings if f.code == "XF003"]
        assert xf003 and xf003[0].severity is Severity.WARNING
        assert "('x0', 'fin')" in xf003[0].message

    def test_unique_path_not_flagged(self):
        t = chain_template("line", ["e1", "e2", "e3"])
        findings = check_templates(DeploymentSpec(roles={"line": t}))
        assert "XF003" not in codes(findings)


class TestLabelCollisions:
    def test_distinct_roles_sharing_label_warned(self):
        a = chain_template("role-a", ["ping", "a2"], first_state=0)
        b = chain_template("role-b", ["ping", "b2"], first_state=3)
        spec = DeploymentSpec(roles={"role-a": a, "role-b": b})
        findings = check_templates(spec)
        xf004 = [f for f in findings if f.code == "XF004"]
        assert len(xf004) == 1
        assert "'ping'" in xf004[0].location

    def test_shared_template_object_not_a_collision(self):
        t = forwarder_template()
        spec = DeploymentSpec(roles={"r1": t, "r2": t})
        assert "XF004" not in codes(check_templates(spec))
