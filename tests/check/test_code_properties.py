"""Never-crash property for the code analyzer.

The analyzer runs as a CI gate: an exception on weird-but-valid Python
would block every PR with a traceback instead of a finding.  So the
property mirrors the codec's tolerant-decode guarantee — any
syntactically valid source (Hypothesis-generated stress modules, every
real file in this repo, and even *invalid* sources) must come back as a
report, never an exception.
"""

import ast
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings

from repro.check import check_code
from repro.check.code import load_module, scan_module
from repro.check.code.analyzer import collect_suppressions
from repro.check.code.modules import classify

from tests.strategies import garbled_lines, python_modules

REPO = pathlib.Path(__file__).resolve().parents[2]
ALL_PY = sorted(
    p
    for d in ("src", "tests", "benchmarks")
    for p in (REPO / d).rglob("*.py")
    if "__pycache__" not in p.parts
)


@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
@given(source=python_modules())
def test_analyzer_never_raises_on_valid_python(tmp_path_factory, source):
    ast.parse(source)  # strategy sanity: the input really is valid Python
    target = tmp_path_factory.mktemp("prop") / "gen.py"
    target.write_text(source)
    report = check_code([target])
    assert report.exit_code() in (0, 1)


@settings(max_examples=40)
@given(line=garbled_lines())
def test_analyzer_never_raises_on_garbage(tmp_path_factory, line):
    """Even non-Python bytes must land as CC000, not an exception."""
    target = tmp_path_factory.mktemp("garbage") / "junk.py"
    target.write_text(line, errors="replace")
    report = check_code([target])
    assert report.exit_code() in (0, 1)


def test_analyzer_scans_every_repo_file_without_raising():
    infos = [load_module(p) for p in ALL_PY]
    classify(infos)
    for info in infos:
        scan_module(info)  # must not raise on any real source
        if info.source:
            collect_suppressions(info.source)
    assert len(infos) > 100, "repo sweep looks truncated"


@pytest.mark.parametrize("snippet", [
    "",  # empty file
    "\x00\x01\x02",  # binary junk
    "def f(:\n",  # syntax error
    "async def f():\n    await (lambda: 0)\n",  # odd-but-valid await target
    "class C:\n    pass\n" * 200,  # deeply repeated
    "x = (" + "(" * 40 + "1" + ")" * 40 + ")",  # nesting
])
def test_edge_sources_produce_reports(tmp_path, snippet):
    target = tmp_path / "edge.py"
    target.write_text(snippet)
    report = check_code([target])
    assert report.exit_code() in (0, 1)
