"""Unit tests for the shared findings engine."""

import json
import pathlib
import re

import pytest

from repro.check.findings import (
    CheckReport,
    Finding,
    RULES,
    Severity,
    cap_per_rule,
    error,
    info,
    warning,
)


class TestFinding:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Finding(Severity.ERROR, "ZZ999", "nowhere", "nope")

    def test_every_code_constructs(self):
        for code in RULES:
            f = Finding(Severity.INFO, code, "loc", "msg")
            assert f.code == code

    def test_sort_key_orders_errors_first(self):
        findings = [
            info("TP005", "b", "i"),
            error("LC001", "a", "e"),
            warning("LC003", "a", "w"),
        ]
        ordered = sorted(findings, key=lambda f: f.sort_key)
        assert [f.severity for f in ordered] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_format_and_json_roundtrip_fields(self):
        f = error("LC001", "node_0001.log:3", "bad line")
        assert "LC001" in f.format() and "node_0001.log:3" in f.format()
        as_json = f.to_json()
        assert as_json == {
            "severity": "error",
            "code": "LC001",
            "location": "node_0001.log:3",
            "message": "bad line",
        }


class TestCheckReport:
    def _report(self):
        report = CheckReport()
        report.extend(
            [
                warning("LC003", "a.log:1", "unknown label"),
                error("LC001", "a.log:2", "corrupt"),
                info("TP005", "template 'x'", "dead pair"),
            ]
        )
        return report

    def test_severity_buckets_and_ok(self):
        report = self._report()
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert not report.ok

    def test_exit_codes(self):
        report = self._report()
        assert report.exit_code() == 1
        clean = CheckReport(findings=[warning("LC003", "a", "w")])
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=True) == 1
        assert CheckReport().exit_code(strict=True) == 0

    def test_render_text_is_deterministic_and_sorted(self):
        report = self._report()
        text = report.render_text()
        assert text == report.render_text()
        lines = text.splitlines()
        assert lines[0].startswith("error")
        assert lines[-1].startswith("1 error(s), 1 warning(s), 1 info")

    def test_json_report_parses_and_counts(self):
        report = self._report()
        report.stats["lines"] = 3
        data = json.loads(report.to_json_str())
        assert data["ok"] is False
        assert data["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert data["by_code"] == {"LC001": 1, "LC003": 1, "TP005": 1}
        assert data["stats"]["lines"] == 3
        assert len(data["findings"]) == 3


class TestCapPerRule:
    def test_caps_per_code_and_file_with_summary(self):
        findings = [error("LC001", f"a.log:{i}", "x") for i in range(1, 12)]
        findings += [error("LC001", "b.log:1", "x")]
        capped = cap_per_rule(findings, 8)
        a_kept = [f for f in capped if f.location.startswith("a.log") and f.code == "LC001"]
        assert len(a_kept) == 8
        summaries = [f for f in capped if f.code == "LC007"]
        assert len(summaries) == 1
        assert summaries[0].location == "a.log"
        assert "3 additional LC001" in summaries[0].message
        # the other file keeps its own budget
        assert any(f.location == "b.log:1" for f in capped)

    def test_zero_disables_cap(self):
        findings = [error("LC001", f"a.log:{i}", "x") for i in range(20)]
        assert len(cap_per_rule(findings, 0)) == 20

    def test_summary_code_is_parameterizable(self):
        findings = [error("CC011", f"a.py:{i}", "x") for i in range(1, 5)]
        capped = cap_per_rule(findings, 2, summary_code="CC014")
        summaries = [f for f in capped if f.code == "CC014"]
        assert len(summaries) == 1
        assert not any(f.code == "LC007" for f in capped)


class TestRuleCatalogue:
    DOC = (
        pathlib.Path(__file__).resolve().parents[2]
        / "docs"
        / "STATIC_ANALYSIS.md"
    )

    def test_every_rule_code_is_documented(self):
        doc = self.DOC.read_text()
        missing = [code for code in RULES if f"#### {code}" not in doc]
        assert not missing, f"undocumented rule codes: {missing}"

    def test_no_stale_rule_headings(self):
        """Every ``#### XXnnn`` heading in the doc names a live rule."""
        doc = self.DOC.read_text()
        documented = re.findall(r"^#### ([A-Z]{2}\d{3})\b", doc, flags=re.M)
        stale = [code for code in documented if code not in RULES]
        assert not stale, f"doc headings for retired rule codes: {stale}"

    def test_code_rules_document_severity_and_trigger(self):
        """Each CC section carries a severity tag and (for detection
        rules) a trigger/remediation pair, like the XF/LC catalogue."""
        doc = self.DOC.read_text()
        sections = re.split(r"^#### ", doc, flags=re.M)[1:]
        for section in sections:
            code = section[:5]
            if not code.startswith("CC"):
                continue
            header = section.splitlines()[0]
            assert "*(" in header, f"{code} heading lacks a severity tag"
            if code not in ("CC000", "CC013", "CC014"):
                assert "*Trigger:*" in section or "*Remediation:*" in section, (
                    f"{code} section lacks trigger/remediation"
                )
