"""Tests for the pipeline pre-flight gate."""

import pytest

from repro.check import PreflightError, preflight_check
from repro.check.runner import model_errors, run_check
from repro.check.specs import load_spec
from repro.fsm.graph import TransitionGraph
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import FsmTemplate, forwarder_template
from repro.obs import MetricsRegistry, use_registry


def broken_template():
    """A template whose prerequisite can never be satisfied."""
    return FsmTemplate(
        "broken",
        TransitionGraph(["a", "b"], [("a", "b", "e")], "a"),
        prereqs={"e": [PrereqRule(Peer.SRC, "GHOST")]},
    )


class TestPreflightCheck:
    def test_clean_template_passes(self):
        report = preflight_check(forwarder_template())
        assert report is not None and report.ok

    def test_broken_template_raises_with_findings(self):
        with pytest.raises(PreflightError) as excinfo:
            preflight_check(broken_template())
        assert any(f.code == "XF001" for f in excinfo.value.findings)
        assert "XF001" in str(excinfo.value)

    def test_raise_on_error_false_returns_report(self):
        report = preflight_check(broken_template(), raise_on_error=False)
        assert report is not None and not report.ok

    def test_template_factory_passes_without_analysis(self):
        report = preflight_check(lambda node: forwarder_template())
        assert report is None


class TestPipelineGate:
    def test_evaluate_default_preflight_is_clean(self):
        from repro.analysis.pipeline import evaluate
        from repro.simnet.scenarios import small_network

        result = evaluate(small_network(n_nodes=8, minutes=10.0, seed=2))
        assert result.flows

    def test_model_errors_excludes_corpus_codes(self):
        report = run_check(load_spec("ctp"))
        assert model_errors(report) == []


class TestCheckObservability:
    def test_run_check_emits_counters_and_spans(self, tmp_path):
        (tmp_path / "operations.json").write_text(
            '{"sink": 1, "base_station": 1, "gen_interval": 60.0}'
        )
        (tmp_path / "node_0001.log").write_text("node=1 type=recv\n@@@\n")
        registry = MetricsRegistry()
        with use_registry(registry):
            run_check(load_spec("ctp"), tmp_path)
        snap = registry.snapshot()
        assert snap.counters.get("check.corpus.lines") == 2
        assert snap.counters.get("check.corpus.corrupt") == 1
        assert any(k.startswith("check.findings") for k in snap.counters)
        assert "span.check" in snap.histograms
        assert "span.check.corpus" in snap.histograms
