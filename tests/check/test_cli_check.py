"""End-to-end tests for `refill check` and the analyze pre-flight gate."""

import json
import pathlib

import pytest

from repro.cli import main

FIXTURES = pathlib.Path(__file__).resolve().parent.parent / "fixtures"
DEFECTIVE_STORE = FIXTURES / "defective-deployment"
DEFECTIVE_SPEC = "tests.fixtures.defective_spec:build_spec"


@pytest.fixture(scope="module")
def clean_store(tmp_path_factory):
    out = tmp_path_factory.mktemp("check-cli") / "logs"
    assert main(["simulate", "--nodes", "15", "--days", "1", "--seed", "5",
                 "--out", str(out)]) == 0
    return out


class TestCheckCommand:
    def test_defective_deployment_fails_with_expected_codes(self, capsys):
        code = main(["check", "--logs", str(DEFECTIVE_STORE),
                     "--spec", DEFECTIVE_SPEC, "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        reported = set(data["by_code"])
        # the three planted defect families from the ISSUE
        assert "XF002" in reported   # prerequisite cycle
        assert "XF003" in reported   # nondeterministic (ambiguous) template
        assert "LC001" in reported   # corrupt log shard
        # plus the explicit-node resolver gap and corpus integrity rules
        assert "XF005" in reported
        assert {"LC002", "LC004", "LC005"} <= reported

    def test_clean_deployment_passes(self, clean_store, capsys):
        assert main(["check", "--logs", str(clean_store)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_templates_only_check_needs_no_logs(self, capsys):
        assert main(["check", "--spec", "dissemination"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, capsys):
        # the defective spec alone (no corpus) has errors; a clean spec
        # with warnings flips only under --strict
        assert main(["check", "--spec", "ctp"]) == 0
        assert main(["check", "--spec", "ctp", "--strict"]) == 1

    def test_unknown_spec_is_usage_error(self, capsys):
        assert main(["check", "--spec", "no-such-spec"]) == 2

    def test_json_report_is_deterministic(self, capsys):
        main(["check", "--logs", str(DEFECTIVE_STORE), "--spec", DEFECTIVE_SPEC,
              "--json"])
        first = capsys.readouterr().out
        main(["check", "--logs", str(DEFECTIVE_STORE), "--spec", DEFECTIVE_SPEC,
              "--json"])
        assert capsys.readouterr().out == first


class TestCheckCodeCommand:
    """`refill check --code`: the CC0xx analyzer behind the same CLI."""

    def test_self_scan_is_clean(self, capsys):
        assert main(["check", "--code", "src/repro"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_defect_fixtures_fail_with_exit_1(self, capsys):
        code = main(["check", "--code", str(FIXTURES / "cc_defects"), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        reported = set(data["by_code"])
        # every detection rule is proven live by its seeded defect
        expected = {f"CC{n:03d}" for n in range(14)}  # CC000..CC013
        assert expected <= reported, sorted(expected - reported)

    def test_default_path_is_src_repro(self, capsys):
        assert main(["check", "--code"]) == 0
        assert "files=" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self):
        assert main(["check", "--code", "no/such/dir"]) == 2

    def test_json_report_is_deterministic(self, capsys):
        main(["check", "--code", str(FIXTURES / "cc_defects"), "--json"])
        first = capsys.readouterr().out
        main(["check", "--code", str(FIXTURES / "cc_defects"), "--json"])
        assert capsys.readouterr().out == first

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        snippet = tmp_path / "warn_only.py"
        snippet.write_text(
            "import asyncio\n\n\ndef f():\n    return asyncio.get_event_loop()\n"
        )
        assert main(["check", "--code", str(tmp_path)]) == 0
        assert main(["check", "--code", str(tmp_path), "--strict"]) == 1

    def test_max_per_rule_caps_with_cc014(self, tmp_path, capsys):
        lines = ["import asyncio", "", "", "def f():"]
        lines += ["    asyncio.get_event_loop()"] * 5
        (tmp_path / "flood.py").write_text("\n".join(lines) + "\n")
        main(["check", "--code", str(tmp_path), "--max-per-rule", "2", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["by_code"]["CC011"] == 2
        assert data["by_code"]["CC014"] == 1


class TestAnalyzePreflight:
    def test_analyze_runs_with_gate_on_clean_store(self, clean_store, capsys):
        assert main(["analyze", "--logs", str(clean_store)]) == 0
        assert "Loss cause shares" in capsys.readouterr().out

    def test_no_check_skips_gate(self, clean_store, capsys):
        assert main(["analyze", "--logs", str(clean_store), "--no-check"]) == 0
        assert "Loss cause shares" in capsys.readouterr().out

    def test_corpus_errors_do_not_block_analysis(self, clean_store, tmp_path, capsys):
        """Field data is dirty by assumption: the gate only stops on model errors."""
        import shutil

        dirty = tmp_path / "dirty"
        shutil.copytree(clean_store, dirty)
        first = sorted(dirty.glob("node_*.log"))[0]
        first.write_text(first.read_text() + "@@@ corrupt tail @@@\n")
        assert main(["analyze", "--logs", str(dirty)]) == 0
        assert "Loss cause shares" in capsys.readouterr().out
