"""Module classification: names, import graphs, daemon/deterministic/hot."""

import pathlib

from repro.check.code.modules import (
    classify,
    load_module,
    module_name_for,
    module_pragmas,
)


def write(path: pathlib.Path, source: str) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestModuleNames:
    def test_src_anchored(self):
        assert (
            module_name_for(pathlib.Path("src/repro/serve/ingest.py"))
            == "repro.serve.ingest"
        )

    def test_absolute_src_anchored(self):
        assert (
            module_name_for(pathlib.Path("/root/repo/src/repro/cli.py"))
            == "repro.cli"
        )

    def test_init_names_the_package(self):
        assert (
            module_name_for(pathlib.Path("src/repro/check/__init__.py"))
            == "repro.check"
        )

    def test_unanchored_path_dots_every_part(self):
        assert (
            module_name_for(pathlib.Path("benchmarks/bench_serve.py"))
            == "benchmarks.bench_serve"
        )


class TestClassification:
    def test_async_def_marks_daemon_and_hot(self, tmp_path):
        info = load_module(write(tmp_path / "d.py", "async def run():\n    pass\n"))
        classify([info])
        assert info.defines_async and info.hot_path
        assert not info.deterministic

    def test_deterministic_by_namespace(self, tmp_path):
        path = write(tmp_path / "src" / "repro" / "stress" / "camp.py", "x = 1\n")
        info = load_module(path)
        classify([info])
        assert info.name == "repro.stress.camp"
        assert info.deterministic

    def test_deterministic_by_rng_import(self, tmp_path):
        info = load_module(
            write(tmp_path / "gen.py", "from repro.util.rng import RngStreams\n")
        )
        classify([info])
        assert info.deterministic

    def test_import_by_daemon_propagates_hot(self, tmp_path):
        parser = load_module(
            write(tmp_path / "src" / "repro" / "x" / "parser.py", "def p():\n    pass\n")
        )
        daemon = load_module(
            write(
                tmp_path / "src" / "repro" / "x" / "daemon.py",
                "from repro.x import parser\n\n\nasync def run():\n    parser.p()\n",
            )
        )
        classify([parser, daemon])
        assert daemon.hot_path
        assert parser.hot_path, "sync module imported by a daemon rides its loop"

    def test_unimported_sync_module_is_cold(self, tmp_path):
        cold = load_module(write(tmp_path / "src" / "repro" / "cold.py", "y = 2\n"))
        daemon = load_module(
            write(tmp_path / "src" / "repro" / "d.py", "async def run():\n    pass\n")
        )
        classify([cold, daemon])
        assert not cold.hot_path

    def test_pragmas_override(self, tmp_path):
        info = load_module(
            write(tmp_path / "helper.py", "# refill: module=deterministic\nx = 1\n")
        )
        classify([info])
        assert info.deterministic

    def test_pragma_values(self):
        assert module_pragmas("# refill: module=hot-path\n") == {"hot-path"}
        assert module_pragmas("# refill: module=unknown-kind\n") == set()

    def test_compat_shim_detection(self, tmp_path):
        info = load_module(write(tmp_path / "_compat.py", "x = 1\n"))
        assert info.is_compat_shim

    def test_parse_error_recorded_not_raised(self, tmp_path):
        info = load_module(write(tmp_path / "bad.py", "def broken(:\n"))
        assert info.tree is None
        assert info.parse_error
        classify([info])  # must tolerate unparsed modules

    def test_relative_import_resolution(self, tmp_path):
        path = write(
            tmp_path / "src" / "repro" / "pkg" / "mod.py",
            "from . import sibling\nfrom ..util import rng\n",
        )
        info = load_module(path)
        assert "repro.pkg.sibling" in info.imports
        assert "repro.util.rng" in info.imports
