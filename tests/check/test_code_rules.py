"""Seeded-defect coverage for every ``CC0xx`` rule, plus suppressions.

Mirrors the defective-deployment pattern used for the XF/LC analyzers:
each fixture file in ``tests/fixtures/cc_defects`` plants exactly one
rule's defect, and this suite asserts the rule fires with the expected
code, severity and location — and that the live tree itself scans clean.
"""

import pathlib
import textwrap

import pytest

from repro.check import check_code
from repro.check.code import load_module, scan_module
from repro.check.findings import Severity

FIXTURES = pathlib.Path(__file__).resolve().parent.parent / "fixtures" / "cc_defects"
SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: (fixture file, rule code, severity, line) — one planted defect each.
EXPECTED = [
    ("cc000_parse_error.py", "CC000", Severity.ERROR, 1),
    ("cc001_blocking_async.py", "CC001", Severity.ERROR, 6),
    ("cc002_dropped_task.py", "CC002", Severity.ERROR, 6),
    ("cc003_swallowed_cancel.py", "CC003", Severity.ERROR, 8),
    ("cc004_raw_timeout.py", "CC004", Severity.ERROR, 6),
    ("cc005_writer_close.py", "CC005", Severity.WARNING, 8),
    ("cc006_contextvar_token.py", "CC006", Severity.WARNING, 8),
    ("cc007_unawaited.py", "CC007", Severity.ERROR, 9),
    ("cc008_wallclock_det.py", "CC008", Severity.ERROR, 7),
    ("cc009_global_random.py", "CC009", Severity.ERROR, 7),
    ("cc010_hot_loop_clock.py", "CC010", Severity.WARNING, 9),
    ("cc011_get_event_loop.py", "CC011", Severity.WARNING, 6),
    ("cc012_bare_except_async.py", "CC012", Severity.WARNING, 8),
    ("cc013_bad_suppression.py", "CC013", Severity.WARNING, 10),
]


def scan_snippet(source: str, path: pathlib.Path, name: str = "snippet.py"):
    """Scan one inline snippet through the full pipeline."""
    target = path / name
    target.write_text(textwrap.dedent(source))
    return check_code([target])


class TestSeededDefects:
    @pytest.mark.parametrize(
        "filename,code,severity,line",
        EXPECTED,
        ids=[row[1] for row in EXPECTED],
    )
    def test_rule_fires_at_expected_location(self, filename, code, severity, line):
        report = check_code([FIXTURES / filename])
        hits = [
            f
            for f in report.findings
            if f.code == code and f.severity is severity
        ]
        assert hits, f"{code} did not fire on {filename}: {report.render_text()}"
        locations = {f.location for f in hits}
        assert f"{FIXTURES / filename}:{line}" in locations, locations

    def test_whole_fixture_dir_fails(self):
        report = check_code([FIXTURES])
        assert report.exit_code() == 1
        codes = {f.code for f in report.findings}
        assert {f"CC{n:03d}" for n in range(14)} <= codes

    def test_stale_suppression_is_flagged(self):
        report = check_code([FIXTURES / "cc013_bad_suppression.py"])
        stale = [
            f
            for f in report.findings
            if f.code == "CC013" and "matched no finding" in f.message
        ]
        assert len(stale) == 1
        assert stale[0].location.endswith(":13")

    def test_malformed_suppression_does_not_suppress(self):
        report = check_code([FIXTURES / "cc013_bad_suppression.py"])
        assert any(f.code == "CC011" for f in report.findings)


class TestSelfScan:
    def test_src_repro_is_clean(self):
        report = check_code([SRC])
        assert report.findings == [], report.render_text()
        assert report.exit_code(strict=True) == 0

    def test_self_scan_used_the_recorded_suppressions(self):
        # the four justified suppressions (2× CC010 ingest chunk
        # staleness, 2× CC001 shutdown unlink in server + router) must
        # stay live: if the code they guard is fixed, CC013 flags them
        # stale above
        report = check_code([SRC])
        assert report.stats["suppressions_used"] == 4

    def test_classification_sees_the_daemon(self):
        report = check_code([SRC])
        assert report.stats["async_daemons"] >= 3  # ingest, server, http
        assert report.stats["deterministic_modules"] >= 10  # stress + simnet
        assert report.stats["hot_path_modules"] >= report.stats["async_daemons"]


class TestSuppressions:
    def test_inline_suppression_with_reason_suppresses(self, tmp_path):
        report = scan_snippet(
            """\
            import asyncio


            def f():
                return asyncio.get_event_loop()  # refill: no-cc011 -- test scaffolding
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()
        assert report.stats["suppressions_used"] == 1

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        report = scan_snippet(
            """\
            import asyncio


            def f():
                # refill: no-cc011 -- test scaffolding
                return asyncio.get_event_loop()
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_suppression_is_rule_specific(self, tmp_path):
        # a no-cc001 pragma must not hide a CC011 on the same line
        report = scan_snippet(
            """\
            import asyncio


            def f():
                return asyncio.get_event_loop()  # refill: no-cc001 -- wrong code
            """,
            tmp_path,
        )
        codes = {f.code for f in report.findings}
        assert "CC011" in codes
        assert "CC013" in codes  # the no-cc001 pragma is stale

    def test_suppression_inside_string_literal_is_ignored(self, tmp_path):
        report = scan_snippet(
            '''\
            import asyncio

            DOC = "example:  # refill: no-cc011 -- not a comment"


            def f():
                return asyncio.get_event_loop()
            ''',
            tmp_path,
        )
        codes = {f.code for f in report.findings}
        assert codes == {"CC011"}, report.render_text()


class TestRulePrecision:
    """Compliant idioms — the shapes the live tree uses — stay silent."""

    def test_tracked_task_passes(self, tmp_path):
        report = scan_snippet(
            """\
            import asyncio


            async def spawn(tasks: set) -> None:
                task = asyncio.create_task(asyncio.sleep(0))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                await task
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_cancelled_with_reraise_passes(self, tmp_path):
        report = scan_snippet(
            """\
            import asyncio


            async def consume(q) -> None:
                try:
                    await q.get()
                except asyncio.CancelledError:
                    q.task_done()
                    raise
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_compat_shim_module_may_use_raw_timeout(self, tmp_path):
        shim = tmp_path / "_compat.py"
        shim.write_text(
            "import asyncio\n\n\n"
            "async def guard(coro):\n"
            "    return await asyncio.wait_for(coro, timeout=1.0)\n"
        )
        report = check_code([shim])
        assert not any(f.code == "CC004" for f in report.findings)

    def test_writer_with_wait_closed_passes(self, tmp_path):
        report = scan_snippet(
            """\
            import asyncio


            async def reply(writer) -> None:
                writer.write(b"ok\\n")
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_monotonic_clock_is_fine_everywhere(self, tmp_path):
        report = scan_snippet(
            """\
            # refill: module=deterministic
            import time


            def measure(lines):
                start = time.monotonic()
                for _line in lines:
                    pass
                return time.perf_counter() - start
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_seeded_random_instance_is_fine(self, tmp_path):
        report = scan_snippet(
            """\
            # refill: module=deterministic
            import random


            def draws(seed: int):
                rng = random.Random(seed)
                return [rng.random() for _ in range(3)]
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_blocking_call_in_sync_function_passes(self, tmp_path):
        report = scan_snippet(
            """\
            import time


            def backoff():
                time.sleep(0.1)
            """,
            tmp_path,
        )
        assert report.findings == [], report.render_text()

    def test_aliased_import_is_still_caught(self, tmp_path):
        report = scan_snippet(
            """\
            from asyncio import wait_for as wf


            async def fetch(reader):
                return await wf(reader.read(1), timeout=5.0)
            """,
            tmp_path,
        )
        assert any(f.code == "CC004" for f in report.findings)
