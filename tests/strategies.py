"""Shared Hypothesis strategies for the event model and the stress harness.

Property tests (``tests/events/test_properties.py``) and the stress-harness
tests draw from one vocabulary, so "a random event" means the same thing
everywhere: codec-encodable events over safe identifier text, with the
reserved keys kept out of the info dict.

``garbled_lines`` mirrors the mutation modes of
:class:`repro.stress.faults.GarbleLines` — truncation, character flip,
noise insertion, separator loss — as a Hypothesis strategy, so the codec's
never-raise property is exercised over exactly the damage the fault
injector deals.
"""

import string

from hypothesis import strategies as st

from repro.core.diagnosis import LossCause, LossReport
from repro.core.event_flow import EventFlow
from repro.events.codec import encode_event
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

#: Identifier-safe text for labels and info values (codec-encodable).
SAFE_TEXT = st.text(
    string.ascii_lowercase + string.digits + "_", min_size=1, max_size=12
)

#: Keys an info dict may not use: the codec's encoded field names plus the
#: :meth:`Event.make` keyword names they would collide with.
RESERVED_KEYS = (
    "node", "type", "src", "dst", "pkt", "t",
    "etype", "packet", "time",
)

packet_keys = st.builds(
    PacketKey,
    origin=st.integers(min_value=0, max_value=10_000),
    seq=st.integers(min_value=0, max_value=10_000),
)

events = st.builds(
    lambda etype, node, src, dst, packet, time, info: Event.make(
        etype, node, src=src, dst=dst, packet=packet, time=time, **info
    ),
    etype=SAFE_TEXT,
    node=st.integers(min_value=0, max_value=9999),
    src=st.none() | st.integers(min_value=0, max_value=9999),
    dst=st.none() | st.integers(min_value=0, max_value=9999),
    packet=st.none() | packet_keys,
    time=st.none() | st.floats(min_value=0, max_value=1e9, allow_nan=False),
    info=st.dictionaries(
        SAFE_TEXT.filter(lambda k: k not in RESERVED_KEYS),
        SAFE_TEXT,
        max_size=3,
    ),
)


def node_logs(node: int, *, max_events: int = 20):
    """A :class:`NodeLog` whose events all carry the given node id."""
    return st.lists(events, max_size=max_events).map(
        lambda evs: NodeLog(
            node,
            [
                Event.make(
                    e.etype, node, src=e.src, dst=e.dst, packet=e.packet, time=e.time
                )
                for e in evs
            ],
        )
    )


loss_reports = st.builds(
    LossReport,
    cause=st.sampled_from(list(LossCause)),
    position=st.none() | st.integers(min_value=0, max_value=9999),
    anchor=st.none() | events,
)


@st.composite
def event_flows(draw) -> EventFlow:
    """A populated :class:`EventFlow`: entries with provenance, order
    edges, omissions, anomalies and per-node engine state."""
    flow = EventFlow(draw(st.none() | packet_keys))
    for event in draw(st.lists(events, max_size=8)):
        flow.append(
            event,
            inferred=draw(st.booleans()),
            provenance=draw(st.sampled_from(["logged", "inferred", "premise"])),
        )
    n = len(flow.entries)
    if n >= 2:
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            before = draw(st.integers(min_value=0, max_value=n - 1))
            after = draw(st.integers(min_value=0, max_value=n - 1))
            if before != after:
                flow.add_order(before, after)
    flow.omitted.extend(draw(st.lists(events, max_size=3)))
    flow.anomalies.extend(draw(st.lists(SAFE_TEXT, max_size=3)))
    for node in draw(
        st.lists(st.integers(min_value=0, max_value=9999), unique=True, max_size=4)
    ):
        states = draw(st.lists(SAFE_TEXT, min_size=1, max_size=4, unique=True))
        flow.visited_states[node] = frozenset(states)
        flow.final_states[node] = draw(st.sampled_from(states))
    return flow


#: The garbler's injection alphabet (see ``repro.stress.faults._NOISE``).
NOISE_CHARS = "=\x00\x7fÿ  \t#"


@st.composite
def garbled_lines(draw) -> str:
    """A valid encoded log line damaged 1–3 times, GarbleLines-style."""
    line = encode_event(draw(events))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if not line:
            break
        mode = draw(st.integers(min_value=0, max_value=3))
        if mode == 0:  # truncation
            line = line[: draw(st.integers(min_value=0, max_value=len(line) - 1))]
        elif mode == 1:  # character flip
            i = draw(st.integers(min_value=0, max_value=len(line) - 1))
            line = line[:i] + draw(st.sampled_from(NOISE_CHARS)) + line[i + 1 :]
        elif mode == 2:  # noise insertion
            i = draw(st.integers(min_value=0, max_value=len(line)))
            line = line[:i] + draw(st.sampled_from(NOISE_CHARS)) + line[i:]
        else:  # separator loss
            line = line.replace("=", " ")
    return line
