"""Shared Hypothesis strategies for the event model and the stress harness.

Property tests (``tests/events/test_properties.py``) and the stress-harness
tests draw from one vocabulary, so "a random event" means the same thing
everywhere: codec-encodable events over safe identifier text, with the
reserved keys kept out of the info dict.

``garbled_lines`` mirrors the mutation modes of
:class:`repro.stress.faults.GarbleLines` — truncation, character flip,
noise insertion, separator loss — as a Hypothesis strategy, so the codec's
never-raise property is exercised over exactly the damage the fault
injector deals.
"""

import keyword
import string

from hypothesis import strategies as st

from repro.core.diagnosis import LossCause, LossReport
from repro.core.event_flow import EventFlow
from repro.events.codec import encode_event
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

#: Identifier-safe text for labels and info values (codec-encodable).
SAFE_TEXT = st.text(
    string.ascii_lowercase + string.digits + "_", min_size=1, max_size=12
)

#: Keys an info dict may not use: the codec's encoded field names plus the
#: :meth:`Event.make` keyword names they would collide with.
RESERVED_KEYS = (
    "node", "type", "src", "dst", "pkt", "t",
    "etype", "packet", "time",
)

packet_keys = st.builds(
    PacketKey,
    origin=st.integers(min_value=0, max_value=10_000),
    seq=st.integers(min_value=0, max_value=10_000),
)

events = st.builds(
    lambda etype, node, src, dst, packet, time, info: Event.make(
        etype, node, src=src, dst=dst, packet=packet, time=time, **info
    ),
    etype=SAFE_TEXT,
    node=st.integers(min_value=0, max_value=9999),
    src=st.none() | st.integers(min_value=0, max_value=9999),
    dst=st.none() | st.integers(min_value=0, max_value=9999),
    packet=st.none() | packet_keys,
    time=st.none() | st.floats(min_value=0, max_value=1e9, allow_nan=False),
    info=st.dictionaries(
        SAFE_TEXT.filter(lambda k: k not in RESERVED_KEYS),
        SAFE_TEXT,
        max_size=3,
    ),
)


def node_logs(node: int, *, max_events: int = 20):
    """A :class:`NodeLog` whose events all carry the given node id."""
    return st.lists(events, max_size=max_events).map(
        lambda evs: NodeLog(
            node,
            [
                Event.make(
                    e.etype, node, src=e.src, dst=e.dst, packet=e.packet, time=e.time
                )
                for e in evs
            ],
        )
    )


loss_reports = st.builds(
    LossReport,
    cause=st.sampled_from(list(LossCause)),
    position=st.none() | st.integers(min_value=0, max_value=9999),
    anchor=st.none() | events,
)


@st.composite
def event_flows(draw) -> EventFlow:
    """A populated :class:`EventFlow`: entries with provenance, order
    edges, omissions, anomalies and per-node engine state."""
    flow = EventFlow(draw(st.none() | packet_keys))
    for event in draw(st.lists(events, max_size=8)):
        flow.append(
            event,
            inferred=draw(st.booleans()),
            provenance=draw(st.sampled_from(["logged", "inferred", "premise"])),
        )
    n = len(flow.entries)
    if n >= 2:
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            before = draw(st.integers(min_value=0, max_value=n - 1))
            after = draw(st.integers(min_value=0, max_value=n - 1))
            if before != after:
                flow.add_order(before, after)
    flow.omitted.extend(draw(st.lists(events, max_size=3)))
    flow.anomalies.extend(draw(st.lists(SAFE_TEXT, max_size=3)))
    for node in draw(
        st.lists(st.integers(min_value=0, max_value=9999), unique=True, max_size=4)
    ):
        states = draw(st.lists(SAFE_TEXT, min_size=1, max_size=4, unique=True))
        flow.visited_states[node] = frozenset(states)
        flow.final_states[node] = draw(st.sampled_from(states))
    return flow


#: Building blocks for :func:`python_modules`: statement templates the
#: code analyzer must survive, spanning every construct its rules touch.
_PY_IDENT = st.text(string.ascii_lowercase, min_size=1, max_size=8).filter(
    lambda s: s.isidentifier() and not keyword.iskeyword(s)
)

_PY_STATEMENTS = (
    "pass",
    "x = 1",
    "_ = asyncio.create_task(noop())",
    "asyncio.create_task(noop())",
    "await asyncio.sleep(0)",
    "time.sleep(0)",
    "time.time()",
    "random.random()",
    "asyncio.get_event_loop()",
    "try:\n    pass\nexcept asyncio.CancelledError:\n    pass",
    "try:\n    pass\nexcept asyncio.CancelledError:\n    raise",
    "try:\n    pass\nexcept:\n    pass",
    "for i in range(3):\n    time.time()",
    "while False:\n    datetime.datetime.now()",
    "writer.write(b'x')",
    "await writer.drain()",
    "writer.close()",
    "await writer.wait_closed()",
    "VAR.set('x')",
    "token = VAR.set('x')",
    "await asyncio.wait_for(noop(), timeout=1)",
)

_PY_PRAGMAS = (
    "",
    "# refill: module=deterministic\n",
    "# refill: module=hot-path\n",
    "# refill: no-cc011\n",
    "# refill: no-cc001 -- generated\n",
)


@st.composite
def python_modules(draw) -> str:
    """Syntactically valid Python that stresses every analyzer rule.

    Random-but-valid sources: a pragma prefix, imports, a ContextVar,
    and functions (sync/async, randomly nested in a class) whose bodies
    mix the statement templates — including suppression comments in
    arbitrary positions.  The analyzer must never raise on any of it.
    """
    parts = [draw(st.sampled_from(_PY_PRAGMAS))]
    parts.append(
        "import asyncio\nimport datetime\nimport random\nimport time\n"
        "from contextvars import ContextVar\n\n"
        "VAR = ContextVar('v', default=None)\n\n\n"
        "async def noop():\n    pass\n"
    )
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        name = draw(_PY_IDENT)
        is_async = draw(st.booleans())
        in_class = draw(st.booleans())
        body_stmts = draw(
            st.lists(st.sampled_from(_PY_STATEMENTS), min_size=1, max_size=5)
        )
        if not is_async:  # await only parses inside async def
            body_stmts = [s for s in body_stmts if "await" not in s] or ["pass"]
        if draw(st.booleans()):
            body_stmts.append(
                "pass  # refill: no-cc0%02d%s"
                % (draw(st.integers(0, 14)), draw(st.sampled_from(["", " -- why"])))
            )
        indent = "        " if in_class else "    "
        body = "\n".join(
            indent + line
            for stmt in body_stmts
            for line in stmt.splitlines()
        )
        header = f"{'async ' if is_async else ''}def {name}(writer):\n"
        if in_class:
            parts.append(f"class C_{name}:\n    {header}{body}\n")
        else:
            parts.append(f"{header}{body}\n")
    return "\n\n".join(parts)


#: The garbler's injection alphabet (see ``repro.stress.faults._NOISE``).
NOISE_CHARS = "=\x00\x7fÿ  \t#"


#: Separators whose framing semantics differ between ``str.splitlines``
#: and byte-level ``\n`` splitting — the cases ``scan_log_bytes``'s
#: pre-scan must route to the str path.
_EXOTIC_SEPARATORS = (
    "\n", "\r\n", "\r", "\x0b", "\x0c",
    "\x1c", "\x1d", "\x1e", "\x85", "\u2028",
)

#: Multi-byte UTF-8 encodings to truncate mid-sequence.
_MULTIBYTE = ("é", "λ", "丁", "🙂")


@st.composite
def log_line_bytes(draw) -> bytes:
    """One wire "line" as raw bytes, spanning the whole damage spectrum.

    Draws a valid encoded line, a GarbleLines-style mutated line, raw
    binary garbage, a line truncated mid-UTF-8-sequence, or a valid line
    with an embedded newline-class separator — everything the byte-level
    tokenizer must classify exactly like the legacy str scanner.
    """
    mode = draw(st.integers(min_value=0, max_value=4))
    if mode == 0:  # valid canonical line
        return encode_event(draw(events)).encode("utf-8")
    if mode == 1:  # garbled but still text
        return draw(garbled_lines()).encode("utf-8")
    if mode == 2:  # raw binary garbage
        return draw(st.binary(max_size=40))
    if mode == 3:  # truncated mid-UTF-8-sequence
        raw = (encode_event(draw(events)) + draw(st.sampled_from(_MULTIBYTE))).encode(
            "utf-8"
        )
        return raw[: draw(st.integers(min_value=1, max_value=len(raw) - 1))]
    # embedded newline-class separator inside an otherwise valid line
    line = encode_event(draw(events))
    i = draw(st.integers(min_value=0, max_value=len(line)))
    sep = draw(st.sampled_from(_EXOTIC_SEPARATORS))
    return (line[:i] + sep + line[i:]).encode("utf-8")


@st.composite
def garbled_lines(draw) -> str:
    """A valid encoded log line damaged 1–3 times, GarbleLines-style."""
    line = encode_event(draw(events))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if not line:
            break
        mode = draw(st.integers(min_value=0, max_value=3))
        if mode == 0:  # truncation
            line = line[: draw(st.integers(min_value=0, max_value=len(line) - 1))]
        elif mode == 1:  # character flip
            i = draw(st.integers(min_value=0, max_value=len(line) - 1))
            line = line[:i] + draw(st.sampled_from(NOISE_CHARS)) + line[i + 1 :]
        elif mode == 2:  # noise insertion
            i = draw(st.integers(min_value=0, max_value=len(line)))
            line = line[:i] + draw(st.sampled_from(NOISE_CHARS)) + line[i:]
        else:  # separator loss
            line = line.replace("=", " ")
    return line


#: A small protocol-flavored label vocabulary for learner property tests —
#: overlapping prefixes and repeats, the shapes k-tails has to fold.
TRACE_LABELS = ("gen", "recv", "trans", "ack_recvd", "dup", "overflow", "timeout")


def label_traces(
    *,
    alphabet=TRACE_LABELS,
    min_traces: int = 1,
    max_traces: int = 12,
    max_len: int = 8,
):
    """Corpora of non-empty label sequences for ``repro.learn`` properties.

    Draws lists of label tuples over a bounded alphabet; duplicates are
    deliberately allowed (support counting and the dedup-before-mining
    canonicalization both need them).
    """
    return st.lists(
        st.lists(
            st.sampled_from(alphabet), min_size=1, max_size=max_len
        ).map(tuple),
        min_size=min_traces,
        max_size=max_traces,
    )
