"""Seeded-defect deployment spec for the `refill check` smoke tests.

Three planted model defects, exercised by CI and tests/check/:

- an inter-node prerequisite *cycle* between nodes 1 and 2 (`XF002`):
  node 1's ``a1`` needs node 2 at ``s4`` (reached only via ``b1``), while
  node 2's ``b1`` needs node 1 at ``s1`` (reached only via ``a1``);
- an *ambiguous* template on node 3 (`XF003`): the ``c_fin`` jump from
  ``x0`` has two equally short inferred prefixes (via ``x1a`` or ``x1b``)
  and no admissibility predicate to break the tie;
- an explicit-node rule naming a state its peer's template lacks (`XF005`).

The companion store at ``tests/fixtures/defective-deployment/`` plants the
corpus defects (corrupt shard, node-id mismatch, off-origin gen, ...).
"""

from repro.check import DeploymentSpec
from repro.fsm.graph import TransitionGraph
from repro.fsm.prerequisites import PrereqRule
from repro.fsm.templates import FsmTemplate, chain_template


def build_spec() -> DeploymentSpec:
    role_a = chain_template(
        "role-a",
        ["a1", "a2"],
        prereqs={"a1": [PrereqRule(2, "s4")]},
        first_state=0,
    )
    role_b = chain_template(
        "role-b",
        ["b1", "b2"],
        prereqs={"b1": [PrereqRule(1, "s1")]},
        first_state=3,
    )
    role_c = FsmTemplate(
        "role-c",
        TransitionGraph(
            ["x0", "x1a", "x1b", "x2"],
            [
                ("x0", "x1a", "c_left"),
                ("x0", "x1b", "c_right"),
                ("x1a", "x2", "c_fin"),
                ("x1b", "x2", "c_fin"),
            ],
            "x0",
        ),
        prereqs={"c_fin": [PrereqRule(3, "NOWHERE")]},
    )
    return DeploymentSpec(
        roles={"role-a": role_a, "role-b": role_b, "role-c": role_c},
        node_roles={1: "role-a", 2: "role-b", 3: "role-c"},
    )
