"""Seeded defect: CancelledError caught without re-raise (CC003, error)."""
import asyncio


async def consume(queue: "asyncio.Queue[str]") -> None:
    try:
        await queue.get()
    except asyncio.CancelledError:  # line 8: cancellation swallowed
        pass
