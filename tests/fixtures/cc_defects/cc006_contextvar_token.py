"""Seeded defect: ContextVar.set token discarded (CC006, warning)."""
from contextvars import ContextVar

CURRENT: ContextVar[str] = ContextVar("current", default="")


def activate(name: str) -> None:
    CURRENT.set(name)  # line 8: token dropped, previous value unrestorable
