"""Seeded defect: suppression hygiene (CC013, warning).

Line 9's suppression has no ``-- reason`` so it is malformed (and does
not suppress the CC011 underneath); line 12's is well-formed but stale.
"""
import asyncio


def schedule() -> "asyncio.AbstractEventLoop":
    return asyncio.get_event_loop()  # refill: no-cc011


# refill: no-cc002 -- stale: nothing spawns a task here
done = True
