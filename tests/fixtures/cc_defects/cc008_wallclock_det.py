"""Seeded defect: wall clock in a deterministic module (CC008, error)."""
# refill: module=deterministic
import time


def stamp() -> float:
    return time.time()  # line 7: replays diverge
