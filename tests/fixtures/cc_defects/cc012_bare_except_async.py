"""Seeded defect: bare except in async code (CC012, warning)."""


async def drain(items: "list[str]") -> int:
    done = 0
    try:
        done = len(items)
    except:  # line 8: swallows CancelledError too # noqa: E722
        done = -1
    return done
