"""Seeded defect: global RNG draw in a deterministic module (CC009, error)."""
# refill: module=deterministic
import random


def jitter() -> float:
    return random.random()  # line 7: shared module state, unseeded
