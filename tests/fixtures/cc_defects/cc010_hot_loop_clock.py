"""Seeded defect: wall-clock read inside a hot-path loop (CC010, warning)."""
# refill: module=hot-path
import time


def pump(lines: "list[str]") -> "list[float]":
    seen = []
    for _line in lines:
        seen.append(time.time())  # line 9: per-line clock read
    return seen
