"""Seeded defect: asyncio.get_event_loop (CC011, warning)."""
import asyncio


def schedule() -> "asyncio.AbstractEventLoop":
    return asyncio.get_event_loop()  # line 6: loop-state dependent
