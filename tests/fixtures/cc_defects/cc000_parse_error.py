# Seeded defect: this file must not parse (CC000, error, line 1).
def broken(:
    pass
