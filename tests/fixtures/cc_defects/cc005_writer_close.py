"""Seeded defect: writer closed without wait_closed (CC005, warning)."""
import asyncio


async def reply(writer: asyncio.StreamWriter) -> None:
    writer.write(b"ok\n")
    await writer.drain()
    writer.close()  # line 8: final flush may be lost
