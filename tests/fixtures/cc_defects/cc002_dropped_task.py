"""Seeded defect: task handle dropped (CC002, error)."""
import asyncio


async def spawn() -> None:
    asyncio.create_task(asyncio.sleep(1))  # line 6: never awaited/cancelled
