"""Seeded defect: coroutine called but never awaited (CC007, error)."""


async def flush() -> None:
    pass


async def shutdown() -> None:
    flush()  # line 9: body never runs
