"""Seeded defect: blocking call inside async def (CC001, error)."""
import time


async def handler() -> None:
    time.sleep(1.0)  # line 6: stalls the event loop
