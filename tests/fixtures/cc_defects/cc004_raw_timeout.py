"""Seeded defect: raw asyncio timeout outside the compat shim (CC004, error)."""
import asyncio


async def fetch(reader: asyncio.StreamReader) -> bytes:
    return await asyncio.wait_for(reader.read(1), timeout=5.0)  # line 6
