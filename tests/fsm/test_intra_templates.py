"""Unit tests for intra-node derivation and the FSM templates (paper §IV-B)."""

import pytest

from repro.events.event import Event, EventType
from repro.events.packet import PacketKey
from repro.fsm.graph import TransitionGraph
from repro.fsm.intra import derive_intra_transitions
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import (
    ACKED,
    DROPPED_OVERFLOW,
    DROPPED_TIMEOUT,
    IDLE,
    RECEIVED,
    SENT,
    chain_template,
    forwarder_template,
)


class _Ctx:
    """Minimal NeighborContext stub."""

    def __init__(self, up=None, down=None):
        self._up = up or {}
        self._down = down or {}

    def upstream(self, node):
        return self._up.get(node)

    def downstream(self, node):
        return self._down.get(node)


class TestIntraDerivation:
    def test_unique_target_creates_jump(self):
        g = TransitionGraph(
            ["s0", "s1", "s2"],
            [("s0", "s1", "a"), ("s1", "s2", "b")],
            "s0",
        )
        intra = derive_intra_transitions(g)
        # 'b' observed at s0: unique target s2 is reachable -> jump
        assert intra[("s0", "b")].dst == "s2"
        # no jump once past the event's sources
        assert ("s2", "a") not in intra

    def test_ambiguous_targets_produce_no_jump(self):
        # 'e' can land on s1 or s2, both reachable from s0 -> ambiguous
        g = TransitionGraph(
            ["s0", "sa", "sb", "s1", "s2"],
            [
                ("s0", "sa", "x"),
                ("s0", "sb", "y"),
                ("sa", "s1", "e"),
                ("sb", "s2", "e"),
            ],
            "s0",
        )
        intra = derive_intra_transitions(g)
        assert ("s0", "e") not in intra
        # from sa only s1 is reachable -> unambiguous
        assert intra[("sa", "e")].dst == "s1"

    def test_multiple_edges_same_target_still_unique(self):
        g = TransitionGraph(
            ["s0", "s1", "s2"],
            [("s0", "s1", "a"), ("s1", "s2", "e"), ("s0", "s2", "e")],
            "s0",
        )
        intra = derive_intra_transitions(g)
        # distinct transitions, same target set {s2}
        assert intra[("s0", "e")].dst == "s2"


class TestForwarderTemplate:
    def test_graph_shape(self):
        t = forwarder_template()
        g = t.graph
        assert set(g.states) == {
            IDLE, RECEIVED, SENT, ACKED, DROPPED_TIMEOUT, DROPPED_OVERFLOW,
        }
        assert g.initial == IDLE
        # key normal edges
        assert g.transitions_from(IDLE, "recv")[0].dst == RECEIVED
        assert g.transitions_from(RECEIVED, "trans")[0].dst == SENT
        assert g.transitions_from(SENT, "ack_recvd")[0].dst == ACKED
        assert g.transitions_from(SENT, "timeout")[0].dst == DROPPED_TIMEOUT
        assert g.transitions_from(ACKED, "recv")[0].dst == RECEIVED  # loops

    def test_intra_jumps_match_paper_intuitions(self):
        t = forwarder_template()
        # "a sending operation implies a prior receiving operation":
        # trans at IDLE jumps to SENT
        assert t.intra[(IDLE, "trans")].dst == SENT
        # ack at IDLE jumps to ACKED (Table II case 3)
        assert t.intra[(IDLE, "ack_recvd")].dst == ACKED
        # dup at IDLE is ambiguous (self-loops on three states) -> no jump
        assert (IDLE, "dup") not in t.intra
        # timeout at RECEIVED jumps over the lost trans
        assert t.intra[(RECEIVED, "timeout")].dst == DROPPED_TIMEOUT

    def test_prereq_rules(self):
        t = forwarder_template()
        assert t.prereq_rules("recv") == (PrereqRule(Peer.SRC, SENT),)
        # the ack's prerequisite is PHY reception: a routing-layer receive
        # or an overflow drop both satisfy it
        assert t.prereq_rules("ack_recvd") == (
            PrereqRule(Peer.DST, RECEIVED, alt_states=(DROPPED_OVERFLOW,)),
        )
        assert t.prereq_rules("ack_recvd")[0].states == (RECEIVED, DROPPED_OVERFLOW)
        assert t.prereq_rules("trans") == ()
        assert t.prereq_rules("gen") == ()

    def test_initial_state_origin_variants(self):
        pkt = PacketKey(7, 0)
        with_gen = forwarder_template(with_gen=True)
        assert with_gen.initial_state(7, pkt) == IDLE
        assert with_gen.initial_state(3, pkt) == IDLE
        nogen = forwarder_template(with_gen=False)
        assert nogen.initial_state(7, pkt) == RECEIVED  # origin has the packet
        assert nogen.initial_state(3, pkt) == IDLE

    def test_gen_admissible_only_at_origin(self):
        t = forwarder_template()
        pkt = PacketKey(7, 0)
        gen_edge = t.graph.transitions_from(IDLE, "gen")[0]
        assert t.edge_admissible(gen_edge, 7, pkt, _Ctx())
        assert not t.edge_admissible(gen_edge, 3, pkt, _Ctx())

    def test_recv_at_origin_requires_known_upstream(self):
        t = forwarder_template()
        pkt = PacketKey(7, 0)
        recv_edge = t.graph.transitions_from(IDLE, "recv")[0]
        assert not t.edge_admissible(recv_edge, 7, pkt, _Ctx())
        assert t.edge_admissible(recv_edge, 7, pkt, _Ctx(up={7: 3}))
        assert t.edge_admissible(recv_edge, 2, pkt, _Ctx())

    def test_realize_uses_neighbor_context(self):
        t = forwarder_template()
        pkt = PacketKey(1, 0)
        ctx = _Ctx(up={2: 1}, down={2: 3})
        recv = t.realize_event("recv", 2, pkt, ctx)
        assert (recv.src, recv.dst, recv.node) == (1, 2, 2)
        trans = t.realize_event("trans", 2, pkt, ctx)
        assert (trans.src, trans.dst, trans.node) == (2, 3, 2)
        # unknown neighbours degrade to None, not crash
        lonely = t.realize_event("recv", 9, pkt, ctx)
        assert lonely.src is None and lonely.dst == 9

    def test_realize_gen_is_node_local(self):
        t = forwarder_template()
        gen = t.realize_event("gen", 4, PacketKey(4, 1), _Ctx())
        assert gen.src is None and gen.dst is None and gen.node == 4


class TestChainTemplate:
    def test_linear_structure(self):
        t = chain_template("n1", ["e1", "e2"])
        assert t.graph.states == ("s0", "s1", "s2")
        assert t.graph.initial == "s0"
        assert t.graph.transitions_from("s0", "e1")[0].dst == "s1"
        assert t.intra[("s0", "e2")].dst == "s2"

    def test_prereq_rules_with_explicit_nodes(self):
        rules = {"e2": [PrereqRule(2, "s2")]}
        t = chain_template("n1", ["e1", "e2"], rules)
        assert t.prereq_rules("e2") == (PrereqRule(2, "s2"),)
        ev = Event.make("e2", 1)
        assert t.prereq_rules("e2")[0].resolve_node(ev) == 2

    def test_default_realize_is_node_local(self):
        t = chain_template("n1", ["e1"])
        e = t.realize_event("e1", 5, None, _Ctx())
        assert e == Event.make("e1", 5)
