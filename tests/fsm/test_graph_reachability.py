"""Unit tests for the transition graph and reachability (paper §IV-A)."""

import pytest

from repro.fsm.graph import Transition, TransitionGraph
from repro.fsm.reachability import Reachability


def linear_graph():
    """s0 --a--> s1 --b--> s2 --c--> s3"""
    return TransitionGraph(
        ["s0", "s1", "s2", "s3"],
        [("s0", "s1", "a"), ("s1", "s2", "b"), ("s2", "s3", "c")],
        "s0",
    )


def cyclic_graph():
    """s0 --a--> s1 --b--> s2 --r--> s0 plus s1 --x--> s3 (dead end)."""
    return TransitionGraph(
        ["s0", "s1", "s2", "s3"],
        [("s0", "s1", "a"), ("s1", "s2", "b"), ("s2", "s0", "r"), ("s1", "s3", "x")],
        "s0",
    )


class TestTransitionGraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransitionGraph([], [], "s0")
        with pytest.raises(ValueError):
            TransitionGraph(["s0"], [], "nope")
        with pytest.raises(ValueError):
            TransitionGraph(["s0"], [("s0", "s1", "a")], "s0")
        with pytest.raises(ValueError):
            TransitionGraph(["s0"], [("s0", "s0", "a"), ("s0", "s0", "a")], "s0")

    def test_accessors(self):
        g = linear_graph()
        assert g.states == ("s0", "s1", "s2", "s3")
        assert len(g.transitions) == 3
        assert set(g.events) == {"a", "b", "c"}
        assert g.successors("s0") == ["s1"]
        assert [t.dst for t in g.transitions_from("s0", "a")] == ["s1"]
        assert g.transitions_from("s0", "b") == []
        assert [t.src for t in g.transitions_with_event("b")] == ["s1"]

    def test_same_event_on_multiple_edges(self):
        g = TransitionGraph(
            ["s0", "s1", "s2"],
            [("s0", "s1", "e"), ("s1", "s2", "e")],
            "s0",
        )
        assert len(g.transitions_with_event("e")) == 2

    def test_unknown_state_raises(self):
        with pytest.raises(KeyError):
            linear_graph().outgoing("sX")

    def test_to_dot(self):
        dot = linear_graph().to_dot("lin")
        assert dot.startswith("digraph lin {")
        assert '"s0" [shape=doublecircle];' in dot  # the initial state
        assert '"s0" -> "s1" [label="a"];' in dot
        assert dot.rstrip().endswith("}")


class TestReachability:
    def test_linear_reachability(self):
        r = Reachability(linear_graph())
        assert r.reachable("s0", "s3")
        assert r.reachable("s1", "s2")
        assert not r.reachable("s3", "s0")
        # irreflexive without a cycle (paper: sequences are non-empty)
        assert not r.reachable("s0", "s0")

    def test_cycle_makes_state_self_reachable(self):
        r = Reachability(cyclic_graph())
        assert r.reachable("s0", "s0")
        assert r.reachable("s2", "s1")
        assert not r.reachable("s3", "s0")  # dead end

    def test_shortest_path_basic(self):
        r = Reachability(linear_graph())
        path = r.shortest_path("s0", "s2")
        assert [t.event for t in path] == ["a", "b"]
        assert r.shortest_path("s2", "s2") == []
        assert r.shortest_path("s3", "s0") is None

    def test_shortest_path_respects_edge_filter(self):
        g = TransitionGraph(
            ["s0", "s1", "s2"],
            [("s0", "s2", "shortcut"), ("s0", "s1", "a"), ("s1", "s2", "b")],
            "s0",
        )
        r = Reachability(g)
        unrestricted = r.shortest_path("s0", "s2")
        assert [t.event for t in unrestricted] == ["shortcut"]
        filtered = r.shortest_path("s0", "s2", lambda t: t.event != "shortcut")
        assert [t.event for t in filtered] == ["a", "b"]
        nothing = r.shortest_path("s0", "s2", lambda t: t.event == "b")
        assert nothing is None

    def test_shortest_path_via_event_excludes_final_edge(self):
        g = linear_graph()
        r = Reachability(g)
        # reach s3 where the final edge is the observed 'c' event
        prefix = r.shortest_path_via_event("s0", "s3", "c")
        assert [t.event for t in prefix] == ["a", "b"]
        # already at the source of the final edge: empty prefix
        assert r.shortest_path_via_event("s2", "s3", "c") == []

    def test_shortest_path_via_event_picks_nearest_source(self):
        # two 'e' edges into target; from s1 the nearer source wins
        g = TransitionGraph(
            ["s0", "s1", "s2", "T"],
            [("s0", "s1", "a"), ("s1", "s2", "b"), ("s0", "T", "e"), ("s2", "T", "e")],
            "s0",
        )
        r = Reachability(g)
        prefix = r.shortest_path_via_event("s1", "T", "e")
        assert [t.event for t in prefix] == ["b"]

    def test_shortest_path_via_event_none_when_unreachable(self):
        r = Reachability(linear_graph())
        assert r.shortest_path_via_event("s3", "s1", "a") is None
