"""Property-based tests for transition graphs, reachability and intra-node
derivation on randomly generated FSMs."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.graph import Transition, TransitionGraph
from repro.fsm.intra import derive_intra_transitions
from repro.fsm.reachability import CompiledReachability, Reachability


@st.composite
def random_graphs(draw):
    n_states = draw(st.integers(min_value=1, max_value=7))
    states = [f"s{i}" for i in range(n_states)]
    n_labels = draw(st.integers(min_value=1, max_value=4))
    labels = [f"e{i}" for i in range(n_labels)]
    possible = [(a, b, l) for a in states for b in states for l in labels]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=min(len(possible), 14), unique=True)
    )
    return TransitionGraph(states, edges, states[0])


class TestReachabilityProperties:
    @given(random_graphs())
    def test_transitive(self, graph):
        reach = Reachability(graph)
        for a in graph.states:
            for b in reach.reachable_set(a):
                assert reach.reachable_set(b) <= reach.reachable_set(a) | {b} | reach.reachable_set(a)
                for c in reach.reachable_set(b):
                    assert reach.reachable(a, c)

    @given(random_graphs())
    def test_matches_bfs(self, graph):
        reach = Reachability(graph)
        for start in graph.states:
            seen = set()
            queue = deque(graph.successors(start))
            seen.update(queue)
            while queue:
                cur = queue.popleft()
                for nxt in graph.successors(cur):
                    if nxt not in seen:
                        seen.add(nxt)
                        queue.append(nxt)
            assert reach.reachable_set(start) == seen

    @given(random_graphs())
    def test_shortest_path_is_valid_and_minimal(self, graph):
        reach = Reachability(graph)
        for a in graph.states:
            for b in graph.states:
                path = reach.shortest_path(a, b)
                if a == b:
                    assert path == []
                    continue
                if path is None:
                    assert not reach.reachable(a, b)
                    continue
                # valid chain
                assert path[0].src == a and path[-1].dst == b
                for t1, t2 in zip(path, path[1:]):
                    assert t1.dst == t2.src
                # minimal: BFS distance equals path length
                dist = {a: 0}
                queue = deque([a])
                while queue:
                    cur = queue.popleft()
                    for nxt in graph.successors(cur):
                        if nxt not in dist:
                            dist[nxt] = dist[cur] + 1
                            queue.append(nxt)
                assert len(path) == dist[b]


@st.composite
def graphs_with_masks(draw):
    """A random graph plus a random admissible-edge subset (as both a
    bitmask and the equivalent legacy edge filter)."""
    graph = draw(random_graphs())
    admissible = set(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max(len(graph.transitions) - 1, 0)),
                unique=True,
            )
        )
    ) if graph.transitions else set()
    edge_index = {t: i for i, t in enumerate(graph.transitions)}
    mask = 0
    for i in admissible:
        mask |= 1 << i
    return graph, mask, (lambda t: edge_index[t] in admissible)


class TestCompiledReachabilityProperties:
    """The compiled jump tables answer every query exactly like a fresh
    legacy graph walk — same paths (declaration-order tie-breaks included),
    same distances, same unreachability."""

    @given(graphs_with_masks())
    @settings(max_examples=120)
    def test_path_and_dist_match_fresh_walks(self, case):
        graph, mask, edge_filter = case
        reach = Reachability(graph)
        compiled = CompiledReachability(graph)
        index = compiled.index
        for a in graph.states:
            for b in graph.states:
                legacy = reach.shortest_path(a, b, edge_filter)
                fast = compiled.path(index[a], index[b], mask)
                assert fast == legacy
                dist = compiled.dist(index[a], index[b], mask)
                assert dist == (None if legacy is None else len(legacy))

    @given(graphs_with_masks())
    @settings(max_examples=120)
    def test_path_via_event_matches_fresh_walks(self, case):
        graph, mask, edge_filter = case
        reach = Reachability(graph)
        compiled = CompiledReachability(graph)
        index = compiled.index
        for a in graph.states:
            for b in graph.states:
                for event in graph.events:
                    legacy = reach.shortest_path_via_event(a, b, event, edge_filter)
                    fast = compiled.path_via_event(index[a], index[b], event, mask)
                    assert fast == legacy

    @given(random_graphs())
    @settings(max_examples=60)
    def test_full_mask_equals_unfiltered_walks(self, graph):
        reach = Reachability(graph)
        compiled = CompiledReachability(graph)
        index = compiled.index
        for a in graph.states:
            for b in graph.states:
                assert compiled.path(index[a], index[b], compiled.full_mask) == (
                    reach.shortest_path(a, b)
                )


class TestIntraDerivationProperties:
    @given(random_graphs())
    def test_uniqueness_condition_holds_exactly(self, graph):
        reach = Reachability(graph)
        derived = derive_intra_transitions(graph, reach)
        for event in graph.events:
            targets = list(dict.fromkeys(t.dst for t in graph.transitions_with_event(event)))
            for state in graph.states:
                reachable_targets = [t for t in targets if reach.reachable(state, t)]
                if len(reachable_targets) == 1:
                    jump = derived[(state, event)]
                    assert jump.dst == reachable_targets[0]
                    assert jump.src == state and jump.event == event
                else:
                    assert (state, event) not in derived

    @given(random_graphs())
    def test_jump_target_carries_the_event(self, graph):
        derived = derive_intra_transitions(graph)
        for jump in derived.values():
            # some normal transition with this label lands on the target
            assert any(
                t.dst == jump.dst for t in graph.transitions_with_event(jump.event)
            )
