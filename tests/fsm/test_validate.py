"""Unit tests for template validation."""

import pytest

from repro.fsm.graph import TransitionGraph
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import FsmTemplate, dissemination_templates, forwarder_template
from repro.fsm.validate import validate_role_family, validate_template


class TestValidateTemplate:
    def test_forwarder_is_clean(self):
        report = validate_template(forwarder_template())
        assert report.ok
        # dup at IDLE is a known dead pair (uniqueness condition)
        assert ("IDLE", "dup") in report.dead_pairs
        # DROPPED_TIMEOUT is terminal
        assert any("DROPPED_TIMEOUT" in w for w in report.warnings)

    def test_nondeterminism_flagged(self):
        graph = TransitionGraph(
            ["a", "b", "c"],
            [("a", "b", "e"), ("a", "c", "e")],
            "a",
        )
        report = validate_template(FsmTemplate("bad", graph))
        assert not report.ok
        assert any("nondeterministic" in e for e in report.errors)

    def test_unreachable_state_flagged(self):
        graph = TransitionGraph(
            ["a", "b", "island"],
            [("a", "b", "e"), ("island", "b", "x")],
            "a",
        )
        report = validate_template(FsmTemplate("bad", graph))
        assert any("unreachable" in e for e in report.errors)

    def test_unknown_prereq_state_warned(self):
        graph = TransitionGraph(["a", "b"], [("a", "b", "e")], "a")
        template = FsmTemplate(
            "warned", graph, prereqs={"e": [PrereqRule(Peer.SRC, "NOPE")]}
        )
        report = validate_template(template)
        assert report.ok  # warning, not error (multi-role wiring is legal)
        assert any("NOPE" in w for w in report.warnings)

    def test_rule_for_unknown_label_warned(self):
        graph = TransitionGraph(["a", "b"], [("a", "b", "e")], "a")
        template = FsmTemplate(
            "warned", graph, prereqs={"ghost": [PrereqRule(Peer.SRC, "a")]}
        )
        report = validate_template(template)
        assert any("unknown label" in w for w in report.warnings)


class TestValidateRoleFamily:
    def test_dissemination_family_resolves_cross_role_states(self):
        factory = dissemination_templates(seeder=1)
        seeder, receiver = factory(1), factory(2)
        # alone, each warns about the other's states
        alone = validate_template(seeder)
        assert any("ACKED_BACK" in w for w in alone.warnings)
        # together, the cross-role references resolve
        family = validate_role_family([seeder, receiver])
        assert family.ok
        assert not any("ACKED_BACK" in w for w in family.warnings)

    def test_family_propagates_errors_with_names(self):
        bad = FsmTemplate(
            "broken",
            TransitionGraph(["a", "b", "x"], [("a", "b", "e")], "a"),
        )
        family = validate_role_family([bad])
        assert any(e.startswith("broken:") for e in family.errors)
