"""Unit tests for template validation."""

import pytest

from repro.check.findings import Severity
from repro.fsm.graph import TransitionGraph
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import FsmTemplate, chain_template, dissemination_templates, forwarder_template
from repro.fsm.validate import validate_role_family, validate_template


class TestValidateTemplate:
    def test_forwarder_is_clean(self):
        report = validate_template(forwarder_template())
        assert report.ok
        # dup at IDLE is a known dead pair (uniqueness condition)
        assert ("IDLE", "dup") in report.dead_pairs
        # DROPPED_TIMEOUT is terminal
        assert any("DROPPED_TIMEOUT" in w for w in report.warnings)

    def test_nondeterminism_flagged(self):
        graph = TransitionGraph(
            ["a", "b", "c"],
            [("a", "b", "e"), ("a", "c", "e")],
            "a",
        )
        report = validate_template(FsmTemplate("bad", graph))
        assert not report.ok
        assert any("nondeterministic" in e for e in report.errors)

    def test_unreachable_state_flagged(self):
        graph = TransitionGraph(
            ["a", "b", "island"],
            [("a", "b", "e"), ("island", "b", "x")],
            "a",
        )
        report = validate_template(FsmTemplate("bad", graph))
        assert any("unreachable" in e for e in report.errors)

    def test_unknown_prereq_state_warned(self):
        graph = TransitionGraph(["a", "b"], [("a", "b", "e")], "a")
        template = FsmTemplate(
            "warned", graph, prereqs={"e": [PrereqRule(Peer.SRC, "NOPE")]}
        )
        report = validate_template(template)
        assert report.ok  # warning, not error (multi-role wiring is legal)
        assert any("NOPE" in w for w in report.warnings)

    def test_rule_for_unknown_label_warned(self):
        graph = TransitionGraph(["a", "b"], [("a", "b", "e")], "a")
        template = FsmTemplate(
            "warned", graph, prereqs={"ghost": [PrereqRule(Peer.SRC, "a")]}
        )
        report = validate_template(template)
        assert any("unknown label" in w for w in report.warnings)


class TestValidateRoleFamily:
    def test_dissemination_family_resolves_cross_role_states(self):
        factory = dissemination_templates(seeder=1)
        seeder, receiver = factory(1), factory(2)
        # alone, each warns about the other's states
        alone = validate_template(seeder)
        assert any("ACKED_BACK" in w for w in alone.warnings)
        # together, the cross-role references resolve
        family = validate_role_family([seeder, receiver])
        assert family.ok
        assert not any("ACKED_BACK" in w for w in family.warnings)

    def test_family_propagates_errors_with_names(self):
        bad = FsmTemplate(
            "broken",
            TransitionGraph(["a", "b", "x"], [("a", "b", "e")], "a"),
        )
        family = validate_role_family([bad])
        assert any(e.startswith("broken:") for e in family.errors)


class TestFindingEmission:
    """Reports now re-emit their diagnostics through the shared Finding model."""

    def test_per_template_lint_carries_tp_codes(self):
        graph = TransitionGraph(
            ["a", "b", "c"],
            [("a", "b", "e"), ("a", "c", "e")],
            "a",
        )
        report = validate_template(FsmTemplate("bad", graph))
        tp001 = [f for f in report.findings if f.code == "TP001"]
        assert tp001 and tp001[0].severity is Severity.ERROR
        assert tp001[0].location == "template 'bad'"

    def test_findings_mirror_legacy_string_lists(self):
        report = validate_template(forwarder_template())
        assert len(report.errors) == len(
            [f for f in report.findings if f.severity is Severity.ERROR]
        )
        assert len(report.warnings) == len(
            [f for f in report.findings if f.severity is Severity.WARNING]
        )


class TestExplicitNodeResolution:
    """The old punt: explicit-node rules were never checked against the peer."""

    def _templates(self, peer_states):
        a = chain_template(
            "role-a", ["a1"],
            prereqs={"a1": [PrereqRule(7, "PEER_STATE")]}, first_state=0,
        )
        b = FsmTemplate(
            "role-b",
            TransitionGraph(
                peer_states,
                [(peer_states[0], peer_states[1], "b1")],
                peer_states[0],
            ),
        )
        return a, b

    def test_explicit_rule_state_missing_from_peer_is_error(self):
        a, b = self._templates(["x", "y"])
        family = validate_role_family([a, b], node_templates={7: b})
        assert not family.ok
        xf005 = [f for f in family.findings if f.code == "XF005"]
        assert xf005 and all(f.severity is Severity.ERROR for f in xf005)
        assert any("PEER_STATE" in f.message and "node 7" in f.message
                   for f in xf005)

    def test_explicit_rule_state_present_on_peer_resolves(self):
        a, b = self._templates(["PEER_STATE", "y"])
        family = validate_role_family([a, b], node_templates={7: b})
        assert family.ok
        assert not [f for f in family.findings if f.code == "XF005"]

    def test_unmapped_node_falls_back_to_family_wide_search(self):
        # without a node->template mapping the state may live on any role
        a, b = self._templates(["PEER_STATE", "y"])
        family = validate_role_family([a, b])
        assert family.ok
