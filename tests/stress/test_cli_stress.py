"""The ``refill stress`` subcommand, end to end through ``cli.main``."""

import json
import pathlib

import pytest

from repro.cli import main

FIXTURE = pathlib.Path(__file__).resolve().parents[1] / "fixtures" / "stress-defect"


def _stress(*extra, out=None):
    argv = ["stress", "--seed", "7", "--cases", "1", "--nodes", "9",
            "--packets-per-day", "6", "--faults", "clean"]
    if out is not None:
        argv += ["--out", str(out)]
    return main(argv + list(extra))


class TestCampaignCli:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        assert _stress(out=tmp_path / "out") == 0
        stdout = capsys.readouterr().out
        assert "case-000" in stdout and "ok" in stdout

    def test_json_output_parses(self, tmp_path, capsys):
        assert _stress("--json", out=tmp_path / "out") == 0
        data = json.loads(capsys.readouterr().out)
        assert data["config"]["seed"] == 7
        assert data["cases"][0]["label"] == "case-000"

    def test_same_seed_same_json(self, tmp_path, capsys):
        outputs = []
        for name in ("a", "b"):
            assert _stress("--json", out=tmp_path / name) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_mild_campaign_with_no_shrink(self, tmp_path, capsys):
        argv = ["stress", "--seed", "3", "--cases", "1", "--nodes", "9",
                "--packets-per-day", "6", "--faults", "mild", "--no-shrink",
                "--out", str(tmp_path / "out")]
        code = main(argv)
        assert code in (0, 1)  # faults may or may not trip an oracle
        assert "severity ladder" in capsys.readouterr().out


class TestReplayCli:
    def test_fixture_exists(self):
        assert (FIXTURE / "repro.json").is_file()

    def test_replay_defect_fixture_exits_nonzero_citing_oracle(self, capsys):
        code = main(["stress", "--replay", str(FIXTURE)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert "ST006" in stdout
        assert "[VERDICT CHANGED]" not in stdout

    def test_replay_json(self, capsys):
        code = main(["stress", "--replay", str(FIXTURE), "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["violated"] == ["ST006"]
        assert data["matches_expectation"] is True

    def test_replay_rejects_non_reproducer(self, tmp_path):
        (tmp_path / "repro.json").write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="unsupported reproducer format"):
            main(["stress", "--replay", str(tmp_path)])
