"""Shared fixtures for the stress-harness tests: one tiny simulated
deployment (cached module-wide) plus stores derived from it."""

import pytest

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.events.store import StoreMetadata, save_store
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee


@pytest.fixture(scope="session")
def tiny_sim():
    params = citysee(n_nodes=9, days=1, packets_per_node_per_day=6.0, seed=5)
    sim = run_simulation(params)
    return params, sim


@pytest.fixture
def clean_store(tiny_sim, tmp_path):
    """A freshly collected store (with its metadata) under tmp_path."""
    params, sim = tiny_sim
    collected = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=1234,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=params.gen_interval,
        outages=params.base_station.outages,
    )
    directory = tmp_path / "store"
    save_store(directory, collected, metadata)
    return directory
