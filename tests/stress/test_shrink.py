"""ddmin minimization: the pure algorithm, budgets, and corpus shrinking."""

from repro.events.store import load_store, shard_path
from repro.stress.campaign import lint_store
from repro.stress.oracles import OracleConfig, StoreCase, run_store_oracles
from repro.stress.shrink import ddmin, shrink_case


class TestDdmin:
    def test_minimizes_to_the_interacting_pair(self):
        items = list(range(10))
        trials = []

        def failing(subset):
            trials.append(tuple(subset))
            return 3 in subset and 7 in subset

        result = ddmin(items, failing)
        assert sorted(result) == [3, 7]

    def test_single_culprit(self):
        assert ddmin(list(range(50)), lambda s: 13 in s) == [13]

    def test_result_still_fails(self):
        def failing(subset):
            return sum(subset) >= 10

        result = ddmin([1, 2, 3, 4, 5, 6], failing)
        assert failing(result)
        # 1-minimal: removing any single element makes the failure vanish
        for i in range(len(result)):
            assert not failing(result[:i] + result[i + 1 :])

    def test_budget_bounds_the_trials(self):
        trials = []

        def failing(subset):
            trials.append(1)
            return 99 in subset

        ddmin(list(range(200)), failing, budget=10)
        assert len(trials) <= 10

    def test_budget_exhaustion_returns_best_so_far(self):
        result = ddmin(list(range(100)), lambda s: 42 in s, budget=3)
        assert 42 in result  # never returns a passing subset


class TestShrinkCase:
    def test_shrinks_a_deleted_shard_defect(self, clean_store, tiny_sim, tmp_path):
        _params, sim = tiny_sim
        shard_path(clean_store, sim.base_station_node).unlink()
        case = StoreCase(
            label="defect",
            corpus_dir=clean_store,
            truth=sim.truth,
            lint_clean=lint_store(clean_store).reconstructable,
            config=OracleConfig(min_cause_accuracy=0.5, backends=()),
        )
        outcome = run_store_oracles(case)
        assert outcome.violated == ["ST006"]

        shrunk = shrink_case(case, outcome.violated, tmp_path / "scratch")
        assert "ST006" in shrunk.violated
        assert shrunk.stats.lines_after < shrunk.stats.lines_before
        assert shrunk.stats.files_after <= shrunk.stats.files_before
        assert shrunk.stats.trials > 0

        # the minimized corpus is a real store and still trips the oracle
        minimized = shrunk.corpus_dir
        assert load_store(minimized) is not None
        recheck = run_store_oracles(
            StoreCase(
                label="recheck",
                corpus_dir=minimized,
                truth=sim.truth,
                lint_clean=lint_store(minimized).reconstructable,
                config=case.config,
            ),
            only={"ST006"},
        )
        assert "ST006" in recheck.violated

    def test_stats_serialize(self, clean_store, tiny_sim, tmp_path):
        _params, sim = tiny_sim
        shard_path(clean_store, sim.base_station_node).unlink()
        case = StoreCase(
            label="defect",
            corpus_dir=clean_store,
            truth=sim.truth,
            lint_clean=True,
            config=OracleConfig(min_cause_accuracy=0.5, backends=()),
        )
        shrunk = shrink_case(case, ["ST006"], tmp_path / "s", budget=8)
        data = shrunk.stats.to_json()
        assert data["trials"] <= 2 * 8  # file pass + line pass budgets
        assert data["lines"] == [shrunk.stats.lines_before, shrunk.stats.lines_after]
