"""Fault operators: determinism, JSON round-trips, and store semantics."""

import json
import shutil

import pytest

from repro.events.store import load_store
from repro.stress.faults import (
    CorruptMetadata,
    Degrade,
    DuplicateRecords,
    FaultPlan,
    GarbleLines,
    NodeBlackout,
    ReorderWindow,
    op_from_json,
    sample_plan,
)
from repro.util.rng import RngStreams

ALL_OPS = (
    GarbleLines(p=0.2),
    DuplicateRecords(p=0.15, max_copies=3),
    ReorderWindow(window=4, p=0.5),
    NodeBlackout(count=2, immune=(1,)),
    CorruptMetadata(mode="wrong_type"),
    Degrade(write_fail_p=0.1, chunk_loss_p=0.1, immune=(1,)),
)


def _store_bytes(directory):
    return {
        f.name: f.read_bytes() for f in sorted(directory.iterdir()) if f.is_file()
    }


class TestDeterminism:
    def test_same_seed_same_store(self, clean_store, tmp_path):
        plan = FaultPlan(ALL_OPS)
        copies = []
        for name in ("a", "b"):
            directory = tmp_path / name
            shutil.copytree(clean_store, directory)
            plan.apply(directory, RngStreams(42))
            copies.append(_store_bytes(directory))
        assert copies[0] == copies[1]

    def test_different_seed_different_store(self, clean_store, tmp_path):
        plan = FaultPlan((GarbleLines(p=0.3),))
        copies = []
        for name, seed in (("a", 1), ("b", 2)):
            directory = tmp_path / name
            shutil.copytree(clean_store, directory)
            plan.apply(directory, RngStreams(seed))
            copies.append(_store_bytes(directory))
        assert copies[0] != copies[1]

    def test_op_streams_are_independent(self, clean_store, tmp_path):
        """Adding an op must not perturb the draws of the ops before it."""
        base = (GarbleLines(p=0.2), ReorderWindow(window=4, p=0.5))
        one = tmp_path / "one"
        shutil.copytree(clean_store, one)
        FaultPlan(base).apply(one, RngStreams(7))
        garbled_then_more = tmp_path / "two"
        shutil.copytree(clean_store, garbled_then_more)
        FaultPlan((*base, DuplicateRecords(p=0.0))).apply(
            garbled_then_more, RngStreams(7)
        )
        assert _store_bytes(one) == _store_bytes(garbled_then_more)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("op", ALL_OPS, ids=lambda op: op.kind)
    def test_op_round_trip(self, op):
        data = json.loads(json.dumps(op.to_json()))
        assert op_from_json(data) == op

    def test_plan_round_trip(self):
        plan = FaultPlan(ALL_OPS)
        assert FaultPlan.from_json(json.loads(json.dumps(plan.to_json()))) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-op kind"):
            op_from_json({"kind": "gamma-rays"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            op_from_json({"kind": "garble", "p": 0.1, "zap": True})


class TestOperatorSemantics:
    def test_garble_produces_corrupt_lines(self, clean_store):
        before = load_store(clean_store)
        GarbleLines(p=0.5).apply(clean_store, RngStreams(3).stream("g"))
        after = load_store(clean_store)
        assert sum(after.corrupt_lines.values()) > 0
        assert after.total_events < before.total_events

    def test_duplicate_grows_the_store(self, clean_store):
        before = load_store(clean_store).total_events
        DuplicateRecords(p=0.5, max_copies=2).apply(
            clean_store, RngStreams(3).stream("d")
        )
        assert load_store(clean_store).total_events > before

    def test_reorder_keeps_the_multiset(self, clean_store):
        before = load_store(clean_store)
        ReorderWindow(window=4, p=1.0).apply(clean_store, RngStreams(3).stream("r"))
        after = load_store(clean_store)
        for node in before.logs:
            assert sorted(map(str, before.logs[node])) == sorted(
                map(str, after.logs[node])
            )

    def test_blackout_respects_immunity(self, clean_store):
        nodes = sorted(load_store(clean_store).logs)
        immune = tuple(nodes[:2])
        NodeBlackout(count=len(nodes), immune=immune).apply(
            clean_store, RngStreams(3).stream("b")
        )
        assert sorted(load_store(clean_store).logs) == sorted(immune)

    @pytest.mark.parametrize("mode", ["drop_key", "bad_json", "wrong_type"])
    def test_metadata_modes_break_the_metadata(self, clean_store, mode):
        CorruptMetadata(mode=mode).apply(clean_store, RngStreams(3).stream("m"))
        with pytest.raises(Exception):
            load_store(clean_store)

    def test_degrade_loses_records_but_spares_immune(self, clean_store):
        before = load_store(clean_store)
        immune = before.metadata.base_station
        Degrade(write_fail_p=0.5, immune=(immune,)).apply(
            clean_store, RngStreams(3).stream("deg")
        )
        after = load_store(clean_store)
        assert after.total_events < before.total_events
        assert len(after.logs[immune]) == len(before.logs[immune])


class TestSamplePlan:
    def test_clean_profile_is_empty(self):
        assert sample_plan(RngStreams(1).stream("p"), profile="clean") == FaultPlan()

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            sample_plan(RngStreams(1).stream("p"), profile="catastrophic")

    def test_sampling_is_deterministic(self):
        plans = [
            sample_plan(RngStreams(9).stream("p"), profile="harsh", immune=(0,))
            for _ in range(2)
        ]
        assert plans[0] == plans[1]

    def test_harsh_immunity_reaches_blackout(self):
        for seed in range(30):
            plan = sample_plan(
                RngStreams(seed).stream("p"), profile="harsh", immune=(42,)
            )
            for op in plan.ops:
                if isinstance(op, NodeBlackout):
                    assert op.immune == (42,)
