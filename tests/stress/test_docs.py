"""Every stress-oracle code must be documented in docs/TESTING.md."""

import pathlib
import re

from repro.stress.oracles import ORACLES

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "TESTING.md"


def test_every_oracle_code_is_documented():
    doc = DOC.read_text()
    missing = [code for code in ORACLES if f"#### {code}" not in doc]
    assert not missing, f"undocumented oracle codes: {missing}"


def test_no_stale_oracle_headings():
    doc = DOC.read_text()
    documented = set(re.findall(r"^#### (ST\d{3})", doc, flags=re.MULTILINE))
    stale = sorted(documented - set(ORACLES))
    assert not stale, f"documented but unregistered oracle codes: {stale}"
