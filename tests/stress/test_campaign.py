"""Campaign engine: determinism, reporting, the lint gate, reproducers."""

import json

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.stress import (
    CampaignConfig,
    OracleConfig,
    load_reproducer,
    replay,
    run_campaign,
)
from repro.stress.campaign import lint_store
from repro.stress.faults import CorruptMetadata, GarbleLines
from repro.util.rng import RngStreams

TINY = dict(nodes=9, days=1, packets_per_node_per_day=6.0)


def _run(config, directory):
    with use_registry(MetricsRegistry()) as registry:
        result = run_campaign(config, directory)
    return result, registry.snapshot()


class TestDeterminism:
    def test_same_seed_byte_identical_report(self, tmp_path):
        config = CampaignConfig(seed=11, cases=2, profile="mild", **TINY)
        dumps = []
        for name in ("a", "b"):
            result, _ = _run(config, tmp_path / name)
            dumps.append(json.dumps(result.to_json(), sort_keys=True))
        assert dumps[0] == dumps[1]
        # report JSON must stay workspace-independent (no absolute paths)
        assert str(tmp_path) not in dumps[0]

    def test_different_seed_different_plans(self, tmp_path):
        plans = []
        for seed in (1, 2):
            config = CampaignConfig(seed=seed, cases=3, profile="mild", **TINY)
            result, _ = _run(config, tmp_path / str(seed))
            plans.append([c.plan for c in result.cases])
        assert plans[0] != plans[1]


class TestCampaignReport:
    def test_clean_profile_passes(self, tmp_path):
        config = CampaignConfig(seed=5, cases=2, profile="clean", **TINY)
        result, snapshot = _run(config, tmp_path)
        assert result.ok
        assert result.exit_code() == 0
        assert result.report.stats["cases"] == 2
        assert snapshot.counters["stress.cases"] == 2
        assert len(result.ladder) == len(OracleConfig().monotonicity_factors)
        text = result.render_text()
        assert "case-000" in text and "severity ladder" in text

    def test_case_records_serialize(self, tmp_path):
        config = CampaignConfig(seed=5, cases=1, profile="mild", **TINY)
        result, _ = _run(config, tmp_path)
        data = result.to_json()
        assert data["config"]["seed"] == 5
        (case,) = data["cases"]
        assert case["label"] == "case-000"
        assert "plan" in case and "metrics" in case

    def test_impossible_floor_fails_and_writes_reproducer(self, tmp_path):
        """A floor no reconstruction can clear turns every case into an
        ST006 violation — exercising shrink + reproducer + replay without
        needing a product bug."""
        config = CampaignConfig(
            seed=5,
            cases=1,
            profile="clean",
            shrink_budget=16,
            oracle=OracleConfig(
                min_cause_accuracy=1.01, monotonicity_factors=()
            ),
            **TINY,
        )
        result, _ = _run(config, tmp_path)
        assert result.exit_code() == 1
        (record,) = result.cases
        assert "ST006" in record.outcome.violated
        assert record.reproducer
        assert record.shrink is not None
        assert record.shrink.lines_after <= record.shrink.lines_before

        repro_dir = tmp_path / record.reproducer
        manifest = load_reproducer(repro_dir)
        assert "ST006" in manifest.expect
        replayed = replay(repro_dir)
        assert replayed.exit_code() == 1
        assert "ST006" in replayed.violated
        assert replayed.matches_expectation

    def test_no_shrink_keeps_full_corpus(self, tmp_path):
        config = CampaignConfig(
            seed=5,
            cases=1,
            profile="clean",
            shrink=False,
            oracle=OracleConfig(
                min_cause_accuracy=1.01, monotonicity_factors=()
            ),
            **TINY,
        )
        result, _ = _run(config, tmp_path)
        (record,) = result.cases
        assert record.shrink is None
        assert record.reproducer  # still replayable, just unminimized
        assert replay(tmp_path / record.reproducer).exit_code() == 1


class TestConfig:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            CampaignConfig(profile="apocalyptic")

    def test_json_round_trip(self):
        config = CampaignConfig(
            seed=9, cases=3, profile="harsh",
            oracle=OracleConfig(min_event_recall=0.2),
        )
        assert CampaignConfig.from_json(config.to_json()) == config


class TestLintGate:
    def test_clean_store_is_reconstructable(self, clean_store):
        lint = lint_store(clean_store)
        assert lint.reconstructable
        assert lint.errors == 0

    def test_garbled_store_stays_reconstructable(self, clean_store):
        """Line-level damage (LC001 errors) never excuses a crash — the
        tolerant loader is expected to absorb it."""
        GarbleLines(p=0.5).apply(clean_store, RngStreams(1).stream("g"))
        lint = lint_store(clean_store)
        assert lint.errors > 0
        assert lint.reconstructable

    def test_metadata_damage_gates_reconstruction(self, clean_store):
        CorruptMetadata(mode="drop_key").apply(
            clean_store, RngStreams(1).stream("m")
        )
        assert not lint_store(clean_store).reconstructable
