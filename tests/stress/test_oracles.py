"""Oracle bundle semantics over real (tiny) stores."""

import pytest

from repro.check.findings import EXTRA_RULES, Finding, Severity, register_rules
from repro.events.store import load_store, shard_path
from repro.stress.campaign import lint_store
from repro.stress.faults import CorruptMetadata, GarbleLines
from repro.stress.oracles import (
    ORACLES,
    OracleConfig,
    StoreCase,
    evidence_fingerprints,
    run_store_oracles,
)
from repro.util.rng import RngStreams


def _case(store, tiny_sim, **overrides):
    _params, sim = tiny_sim
    kwargs = dict(
        label="t",
        corpus_dir=store,
        truth=sim.truth,
        lint_clean=lint_store(store).reconstructable,
        config=OracleConfig(),
    )
    kwargs.update(overrides)
    return StoreCase(**kwargs)


class TestRegistration:
    def test_oracle_ids_are_registered_findings_codes(self):
        for code in ORACLES:
            assert code in EXTRA_RULES
            Finding(Severity.ERROR, code, "x", "y")  # does not raise

    def test_reregistration_is_idempotent(self):
        register_rules(ORACLES)  # same content: fine

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered differently"):
            register_rules({"ST001": "something else"})
        with pytest.raises(ValueError, match="collides with a built-in"):
            register_rules({"LC001": "shadowing a built-in"})


class TestCleanStore:
    def test_no_violations_on_a_clean_store(self, clean_store, tiny_sim):
        outcome = run_store_oracles(_case(clean_store, tiny_sim))
        assert outcome.violated == []
        assert not outcome.rejected
        assert outcome.metrics["packets"] > 0
        assert outcome.metrics["cause_accuracy"] > 0.5

    def test_only_filter_limits_the_bundle(self, clean_store, tiny_sim):
        outcome = run_store_oracles(
            _case(clean_store, tiny_sim), only={"ST007"}
        )
        # differential metrics only come from ST006; the filter skipped it
        assert "cause_accuracy" not in outcome.metrics


class TestDifferentialOracle:
    def test_deleted_base_station_shard_trips_the_floor(
        self, clean_store, tiny_sim
    ):
        _params, sim = tiny_sim
        shard_path(clean_store, sim.base_station_node).unlink()
        outcome = run_store_oracles(
            _case(
                clean_store,
                tiny_sim,
                config=OracleConfig(min_cause_accuracy=0.5),
            )
        )
        assert "ST006" in outcome.violated
        assert outcome.metrics["cause_accuracy"] < 0.5

    def test_no_truth_no_differential(self, clean_store, tiny_sim):
        outcome = run_store_oracles(_case(clean_store, tiny_sim, truth=None))
        assert "cause_accuracy" not in outcome.metrics
        assert outcome.violated == []


class TestRejection:
    def test_metadata_corrupt_store_is_rejected_not_violated(
        self, clean_store, tiny_sim
    ):
        CorruptMetadata(mode="bad_json").apply(
            clean_store, RngStreams(1).stream("m")
        )
        outcome = run_store_oracles(
            _case(clean_store, tiny_sim, lint_clean=False)
        )
        assert outcome.rejected
        assert outcome.violated == []
        assert outcome.reason

    def test_crash_on_lint_clean_store_is_st001(self, clean_store, tiny_sim):
        """Same unloadable store, but if the lint called it clean the crash
        is the harness's business: ST001."""
        CorruptMetadata(mode="bad_json").apply(
            clean_store, RngStreams(1).stream("m")
        )
        outcome = run_store_oracles(
            _case(clean_store, tiny_sim, lint_clean=True)
        )
        assert outcome.violated == ["ST001"]


class TestLocality:
    def test_garbling_one_node_leaves_other_packets_untouched(
        self, clean_store, tiny_sim, tmp_path
    ):
        import shutil

        corrupt = tmp_path / "corrupt"
        shutil.copytree(clean_store, corrupt)
        victim = max(
            (n for n in load_store(clean_store).logs),
            key=lambda n: len(load_store(clean_store).logs[n]),
        )
        text = shard_path(corrupt, victim).read_text()
        shard_path(corrupt, victim).write_text(text.replace("=", " ", 30))
        outcome = run_store_oracles(
            _case(corrupt, tiny_sim, base_dir=clean_store), only={"ST004"}
        )
        assert "ST004" not in outcome.violated
        assert outcome.metrics["untouched_packets"] > 0


class TestFingerprints:
    def test_evidence_fingerprints_cover_every_evidenced_packet(
        self, clean_store, tiny_sim
    ):
        logs = load_store(clean_store).logs
        fps = evidence_fingerprints(logs)
        evidenced = {
            e.packet for log in logs.values() for e in log if e.packet is not None
        }
        assert set(fps) == evidenced

    def test_garbling_changes_fingerprints(self, clean_store, tiny_sim):
        before = evidence_fingerprints(load_store(clean_store).logs)
        GarbleLines(p=0.6).apply(clean_store, RngStreams(2).stream("g"))
        after = evidence_fingerprints(load_store(clean_store).logs)
        assert before != after


class TestOracleConfig:
    def test_json_round_trip(self):
        cfg = OracleConfig(
            backends=("serial",),
            min_cause_accuracy=0.42,
            monotonicity_factors=(0.5, 1.0),
        )
        assert OracleConfig.from_json(cfg.to_json()) == cfg
