"""Unit tests for the sink-view baseline (paper Fig. 4, §V-B1)."""

import pytest

from repro.baselines.sink_view import SinkView
from repro.events.packet import PacketKey


def pk(origin, seq):
    return PacketKey(origin, seq)


class TestSinkView:
    def test_gap_detection(self):
        arrivals = [(pk(1, 1), 10.0), (pk(1, 2), 20.0), (pk(1, 4), 40.0)]
        view = SinkView(arrivals, gen_interval=10.0)
        assert view.lost_packets() == [pk(1, 3)]

    def test_known_max_seq_exposes_tail_losses(self):
        arrivals = [(pk(1, 1), 10.0)]
        blind = SinkView(arrivals, gen_interval=10.0)
        assert blind.lost_packets() == []
        informed = SinkView(arrivals, gen_interval=10.0, known_max_seq={1: 3})
        assert informed.lost_packets() == [pk(1, 2), pk(1, 3)]

    def test_fully_lost_origin_visible_only_with_known_seq(self):
        view = SinkView([], gen_interval=10.0, known_max_seq={5: 2})
        assert view.lost_packets() == [pk(5, 1), pk(5, 2)]

    def test_estimate_from_previous_delivery(self):
        arrivals = [(pk(1, 1), 100.0), (pk(1, 4), 400.0)]
        view = SinkView(arrivals, gen_interval=100.0)
        # paper's recipe: previous received + gap * period
        assert view.estimate_loss_time(pk(1, 2)) == pytest.approx(200.0)
        assert view.estimate_loss_time(pk(1, 3)) == pytest.approx(300.0)

    def test_estimate_from_next_delivery_when_no_previous(self):
        arrivals = [(pk(1, 3), 300.0)]
        view = SinkView(arrivals, gen_interval=100.0)
        assert view.estimate_loss_time(pk(1, 1)) == pytest.approx(100.0)

    def test_estimate_none_for_unknown_origin(self):
        view = SinkView([(pk(1, 1), 10.0)], gen_interval=10.0)
        assert view.estimate_loss_time(pk(9, 1)) is None

    def test_loss_rate(self):
        arrivals = [(pk(1, 1), 1.0), (pk(1, 3), 3.0), (pk(2, 2), 2.0)]
        view = SinkView(arrivals, gen_interval=1.0)
        # origin 1: 3 generated (max seq), 2 received; origin 2: 2 generated,
        # 1 received -> 2 lost of 5
        assert view.loss_rate() == pytest.approx(2 / 5)

    def test_loss_times_cover_all_lost(self):
        arrivals = [(pk(1, 1), 10.0), (pk(1, 5), 50.0)]
        view = SinkView(arrivals, gen_interval=10.0)
        times = view.loss_times()
        assert set(times) == {pk(1, 2), pk(1, 3), pk(1, 4)}
        assert all(t is not None for t in times.values())

    def test_delivered_packets_sorted(self):
        arrivals = [(pk(2, 1), 5.0), (pk(1, 2), 4.0), (pk(1, 1), 3.0)]
        view = SinkView(arrivals, gen_interval=1.0)
        assert view.delivered_packets() == [pk(1, 1), pk(1, 2), pk(2, 1)]
