"""Unit tests for the Wit-style, NetCheck-style and time-correlation baselines."""

import pytest

from repro.baselines.netcheck import NetCheckAnalyzer
from repro.baselines.time_correlation import TimeCorrelationDiagnosis
from repro.baselines.wit import WitMerger
from repro.core.diagnosis import LossCause
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None, t=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT, time=t)


class TestWitMerger:
    def test_individual_logs_cannot_merge(self):
        # REFILL's setting: local logs share no common records (paper §VI)
        logs = {
            1: NodeLog(1, [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]),
            2: NodeLog(2, [ev("recv", 2, 1, 2), ev("trans", 2, 2, 3)]),
            3: NodeLog(3, [ev("recv", 3, 2, 3)]),
        }
        report = WitMerger().merge(logs)
        assert not report.merge_possible
        assert report.isolated_nodes == [1, 2, 3]
        assert report.mergeable_fraction(3) == 0.0
        assert report.merged == []

    def test_coincidentally_identical_local_events_are_not_anchors(self):
        # regression: two nodes logging byte-identical *node-local* events
        # (e.g. the same parent switch) are not a common observation
        logs = {
            1: NodeLog(1, [Event.make("parent_change", 1, old="5", new="6")]),
            2: NodeLog(2, [Event.make("parent_change", 2, old="5", new="6")]),
        }
        report = WitMerger().merge(logs)
        assert not report.merge_possible
        assert report.isolated_nodes == [1, 2]

    def test_sniffer_logs_do_merge(self):
        # two sniffers overhear the same transmissions: common records exist
        frame1 = dict(etype="sniff_trans", src=1, dst=2)
        frame2 = dict(etype="sniff_trans", src=2, dst=3)
        sn_a = NodeLog(10, [
            Event.make(node=10, packet=PKT, **frame1),
            Event.make(node=10, packet=PKT, **frame2),
        ])
        sn_b = NodeLog(11, [
            Event.make(node=11, packet=PKT, **frame1),
            Event.make(node=11, packet=PKT, **frame2),
        ])
        report = WitMerger().merge({10: sn_a, 11: sn_b})
        assert report.merge_possible
        assert report.mergeable_pairs == [(10, 11)]
        assert report.common_counts[(10, 11)] == 2
        assert len(report.merged) == 4

    def test_anchor_merge_orders_across_logs(self):
        a = NodeLog(10, [
            Event.make("local_op", 10, packet=PKT, local="a0"),
            Event.make("sniff", 10, src=1, dst=2, packet=PKT),
            Event.make("sniff", 10, src=2, dst=3, packet=PKT),
        ])
        b = NodeLog(11, [
            Event.make("sniff", 11, src=1, dst=2, packet=PKT),
            Event.make("local_op", 11, packet=PKT, local="b1"),
            Event.make("sniff", 11, src=2, dst=3, packet=PKT),
        ])
        report = WitMerger().merge({10: a, 11: b})
        merged = report.merged
        # b1 (after the shared anchor in log 11) must come after a0
        positions = {(e.node, e.info): i for i, e in enumerate(merged)}
        a0 = positions[(10, (("local", "a0"),))]
        b1 = positions[(11, (("local", "b1"),))]
        anchor_positions = [
            i for i, e in enumerate(merged) if e.etype == "sniff" and e.src == 1
        ]
        assert a0 < min(anchor_positions)
        assert b1 > min(anchor_positions)


class TestNetCheck:
    def test_no_inference_no_cross_node_recovery(self):
        # Table II case 1: REFILL recovers [1-2 recv]/[2-3 trans]; NetCheck
        # cannot, and blames node 1 via trans-without-ack
        logs = {
            1: NodeLog(1, [ev("gen", 1), ev("trans", 1, 1, 2)]),
            3: NodeLog(3, [ev("recv", 3, 2, 3)]),
        }
        analyzer = NetCheckAnalyzer()
        flows = analyzer.reconstruct(logs)
        flow = flows[PKT]
        assert flow.inferred_events() == []
        report = analyzer.diagnose(flows)[PKT]
        assert report.cause is LossCause.TIMEOUT_LOSS
        assert report.position == 1  # wrong: the packet reached node 3

    def test_unprocessable_events_dropped(self):
        # without intra jumps an ack at IDLE is unprocessable
        logs = {1: NodeLog(1, [ev("ack_recvd", 1, 1, 2)])}
        flows = NetCheckAnalyzer().reconstruct(logs)
        assert flows[PKT].entries == []

    def test_timestamp_ordering_used(self):
        logs = {
            1: NodeLog(1, [ev("gen", 1, t=100.0), ev("trans", 1, 1, 2, t=105.0)]),
            2: NodeLog(2, [ev("recv", 2, 1, 2, t=103.0)]),  # skewed clock!
        }
        flows = NetCheckAnalyzer().reconstruct(logs)
        types = [e.etype for e in flows[PKT].events]
        # NetCheck trusts the bogus timestamp: recv lands before trans
        assert types.index("recv") < types.index("trans")

    def test_delivery_detection(self):
        logs = {
            1: NodeLog(1, [ev("gen", 1), ev("trans", 1, 1, 99), ev("ack_recvd", 1, 1, 99)]),
            99: NodeLog(99, [ev("recv", 99, 1, 99)]),
        }
        analyzer = NetCheckAnalyzer()
        report = analyzer.diagnose(analyzer.reconstruct(logs), delivery_node=99)[PKT]
        assert report.cause is LossCause.DELIVERED


class TestTimeCorrelation:
    def make_logs(self):
        return {
            2: NodeLog(2, [
                ev("dup", 2, 1, 2, t=100.0),
                ev("dup", 2, 1, 2, t=101.0),
                ev("dup", 2, 1, 2, t=102.0),
            ]),
            3: NodeLog(3, [ev("timeout", 3, 3, 4, t=103.0)]),
        }

    def test_majority_cause_wins(self):
        diag = TimeCorrelationDiagnosis(self.make_logs(), window=60.0)
        reports = diag.diagnose({PacketKey(7, 1): 100.0})
        assert reports[PacketKey(7, 1)].cause is LossCause.DUP_LOSS

    def test_minority_cause_swallowed(self):
        # the paper's §V-D2 criticism: the timeout loss at t=103 is blamed
        # on the co-temporal duplicate burst
        diag = TimeCorrelationDiagnosis(self.make_logs(), window=60.0)
        reports = diag.diagnose({PacketKey(3, 9): 103.0})
        assert reports[PacketKey(3, 9)].cause is LossCause.DUP_LOSS  # wrong

    def test_no_events_in_window_unknown(self):
        diag = TimeCorrelationDiagnosis(self.make_logs(), window=10.0)
        reports = diag.diagnose({PacketKey(1, 5): 5000.0})
        assert reports[PacketKey(1, 5)].cause is LossCause.UNKNOWN

    def test_missing_estimate_unknown(self):
        diag = TimeCorrelationDiagnosis(self.make_logs())
        reports = diag.diagnose({PacketKey(1, 5): None})
        assert reports[PacketKey(1, 5)].cause is LossCause.UNKNOWN

    def test_window_bounds_respected(self):
        diag = TimeCorrelationDiagnosis(self.make_logs(), window=1.5)
        reports = diag.diagnose({PacketKey(1, 1): 104.0})
        # only the timeout at 103 is within 1.5s
        assert reports[PacketKey(1, 1)].cause is LossCause.TIMEOUT_LOSS
