"""Unit tests for the PathZip-style path-recovery baseline."""

import pytest

from repro.baselines.pathzip import (
    PathZipRecord,
    PathZipRecovery,
    make_records,
    path_digest,
)
from repro.events.packet import PacketKey
from repro.simnet.topology import make_grid_topology
from repro.util.rng import RngStreams


@pytest.fixture(scope="module")
def topo():
    return make_grid_topology(25, RngStreams(3), spacing=50.0, jitter=0.0)


class TestDigest:
    def test_order_sensitive(self):
        assert path_digest([1, 2, 3]) != path_digest([3, 2, 1])

    def test_deterministic_and_32bit(self):
        d = path_digest([5, 9, 61])
        assert d == path_digest([5, 9, 61])
        assert 0 <= d < 2**32

    def test_distinct_paths_distinct_digests_mostly(self):
        digests = {path_digest([a, b]) for a in range(50) for b in range(50)}
        assert len(digests) > 2400  # near-zero collisions at this scale


class TestRecovery:
    def find_true_path(self, topo, origin):
        # BFS shortest path origin -> sink as the "true" route
        from collections import deque
        parent = {origin: None}
        queue = deque([origin])
        while queue:
            cur = queue.popleft()
            if cur == topo.sink:
                break
            for nbr in topo.neighbors(cur):
                if nbr not in parent:
                    parent[nbr] = cur
                    queue.append(nbr)
        path = [topo.sink]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return list(reversed(path))

    def test_recovers_true_path(self, topo):
        origin = 1
        path = self.find_true_path(topo, origin)
        record = PathZipRecord(PacketKey(origin, 1), path_digest(path), len(path) - 1)
        recovered = PathZipRecovery(topo).recover(record)
        assert recovered == path

    def test_origin_is_sink(self, topo):
        record = PathZipRecord(
            PacketKey(topo.sink, 1), path_digest([topo.sink]), 0
        )
        assert PathZipRecovery(topo).recover(record) == [topo.sink]

    def test_wrong_digest_fails(self, topo):
        origin = 1
        path = self.find_true_path(topo, origin)
        record = PathZipRecord(PacketKey(origin, 1), path_digest(path) ^ 0xFFFF, len(path) - 1)
        assert PathZipRecovery(topo).recover(record) is None

    def test_expansion_budget_gives_up(self, topo):
        origin = 1
        path = self.find_true_path(topo, origin)
        # an absurd hop count forces a deep search that hits the budget
        record = PathZipRecord(PacketKey(origin, 1), 12345, 20)
        recovery = PathZipRecovery(topo, max_expansions=50)
        assert recovery.recover(record) is None

    def test_make_records(self, topo):
        paths = {
            PacketKey(1, 1): self.find_true_path(topo, 1),
            PacketKey(2, 1): self.find_true_path(topo, 2),
        }
        records = make_records(paths)
        assert len(records) == 2
        recovered = PathZipRecovery(topo).recover_all(records)
        assert recovered[PacketKey(1, 1)] == paths[PacketKey(1, 1)]
