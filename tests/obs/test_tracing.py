"""Trace context: ids, contextvar isolation, and traced-span recording."""

import asyncio

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    NullRegistry,
    use_recorder,
    use_registry,
)
from repro.obs.tracing import (
    current_trace_id,
    mint_request_id,
    mint_trace_id,
    set_trace_id,
    traced,
    use_trace,
    valid_trace_id,
)


class TestIds:
    def test_minted_ids_are_wire_safe_and_distinct(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(valid_trace_id(t) for t in ids)
        assert all(len(t) == 16 for t in ids)

    def test_request_ids_are_shorter(self):
        rid = mint_request_id()
        assert len(rid) == 8 and valid_trace_id(rid)

    @pytest.mark.parametrize(
        "bad", ["", "has space", "x" * 65, "tab\tid", "new\nline", "quote\"id"]
    )
    def test_invalid_ids_rejected(self, bad):
        assert not valid_trace_id(bad)

    @pytest.mark.parametrize("good", ["a", "A-b_c.d:e", "0" * 64])
    def test_valid_ids_accepted(self, good):
        assert valid_trace_id(good)


class TestContext:
    def test_default_is_none(self):
        assert current_trace_id() is None

    def test_use_trace_scopes_and_restores(self):
        with use_trace("outer"):
            assert current_trace_id() == "outer"
            with use_trace("inner"):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"
        assert current_trace_id() is None

    def test_use_trace_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_trace("doomed"):
                raise RuntimeError("boom")
        assert current_trace_id() is None

    def test_interleaved_tasks_keep_their_own_trace(self):
        """Two tasks yielding control back and forth never see each other's
        trace id — the contextvar isolates them (the reader/consumer
        invariant the daemon relies on)."""

        observed: dict[str, list] = {"a": [], "b": []}

        async def worker(name, gate_in, gate_out):
            set_trace_id(name)
            for _ in range(3):
                await gate_in.wait()
                gate_in.clear()
                observed[name].append(current_trace_id())
                gate_out.set()

        async def main():
            gate_a, gate_b = asyncio.Event(), asyncio.Event()
            task_a = asyncio.create_task(worker("a", gate_a, gate_b))
            task_b = asyncio.create_task(worker("b", gate_b, gate_a))
            gate_a.set()
            await asyncio.gather(task_a, task_b)

        asyncio.run(main())
        assert observed == {"a": ["a", "a", "a"], "b": ["b", "b", "b"]}

    def test_tasks_inherit_trace_at_creation(self):
        result = {}

        async def child():
            result["trace"] = current_trace_id()

        async def main():
            with use_trace("parent"):
                task = asyncio.create_task(child())
            await task

        asyncio.run(main())
        assert result["trace"] == "parent"


class TestTraced:
    def test_noop_under_null_registry(self):
        recorder = FlightRecorder()
        with use_registry(NullRegistry()), use_recorder(recorder):
            with traced("stage") as inner:
                assert inner is None
        assert len(recorder) == 0

    def test_records_span_into_recorder_and_histogram(self):
        registry, recorder = MetricsRegistry(), FlightRecorder()
        with use_registry(registry), use_recorder(recorder):
            with use_trace("t-1"):
                with traced("serve.decode", source="s1") as inner:
                    assert inner is not None
        # the span's labels carry through to its histogram instrument
        assert registry.histogram("span.serve.decode", source="s1").count == 1
        [record] = recorder.snapshot()
        assert record["name"] == "serve.decode"
        assert record["status"] == "ok"
        assert record["trace"] == "t-1"
        assert record["labels"] == {"source": "s1"}
        assert record["duration"] >= 0.0

    def test_exception_recorded_as_error_and_reraised(self):
        registry, recorder = MetricsRegistry(), FlightRecorder()
        with use_registry(registry), use_recorder(recorder):
            with pytest.raises(ValueError):
                with traced("stage"):
                    raise ValueError("boom")
        [record] = recorder.snapshot()
        assert record["status"] == "error"

    def test_cancellation_recorded_and_propagates(self):
        """A reader cancelled mid-stage (daemon shutdown) must still leave a
        span record — and the CancelledError must escape untouched."""
        registry, recorder = MetricsRegistry(), FlightRecorder()

        async def stage():
            with traced("serve.enqueue"):
                await asyncio.sleep(30)

        async def main():
            task = asyncio.create_task(stage())
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        with use_registry(registry), use_recorder(recorder):
            asyncio.run(main())
        [record] = recorder.snapshot()
        assert record["status"] == "cancelled"

    def test_nesting_records_span_path(self):
        registry, recorder = MetricsRegistry(), FlightRecorder()
        with use_registry(registry), use_recorder(recorder):
            with traced("outer"):
                with traced("inner"):
                    pass
        outer, inner = recorder.snapshot()  # newest first — outer exits last
        assert inner["name"] == "inner" and inner["path"] == "outer/inner"
        assert outer["name"] == "outer" and "path" not in outer

    def test_without_recorder_only_histogram_records(self):
        registry = MetricsRegistry()
        with use_registry(registry), use_recorder(None):
            with traced("stage"):
                pass
        assert registry.histogram("span.stage").count == 1
