"""Flight recorder: bounded ring semantics, filtering, dumping."""

import json

import pytest

from repro.obs.recorder import (
    EventRecord,
    FlightRecorder,
    SpanRecord,
    get_recorder,
    use_recorder,
)


def span(name, start=1.0, **kw):
    return SpanRecord(name=name, start=start, duration=0.5, **kw)


class TestRing:
    def test_capacity_bounds_memory(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(20):
            recorder.record(span(f"s{i}"))
        assert len(recorder) == 8
        assert recorder.recorded == 20
        assert recorder.dropped == 12
        # the survivors are the newest 8
        names = [r["name"] for r in recorder.snapshot()]
        assert names == [f"s{i}" for i in range(19, 11, -1)]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_clear_resets_counts(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(span("s"))
        recorder.clear()
        assert len(recorder) == 0 and recorder.recorded == 0


class TestSnapshotFilters:
    @pytest.fixture()
    def recorder(self):
        recorder = FlightRecorder()
        recorder.record(span("serve.decode", trace_id="t1"))
        recorder.record(span("serve.decode", trace_id="t2", status="error"))
        recorder.record(span("serve.refresh", trace_id="t1"))
        recorder.record_event("ingest.hello", trace_id="t2", source="a")
        return recorder

    def test_newest_first(self, recorder):
        names = [r["name"] for r in recorder.snapshot()]
        assert names == [
            "ingest.hello", "serve.refresh", "serve.decode", "serve.decode",
        ]

    def test_limit(self, recorder):
        assert len(recorder.snapshot(limit=2)) == 2

    def test_filter_by_trace(self, recorder):
        records = recorder.snapshot(trace_id="t1")
        assert {r["name"] for r in records} == {"serve.decode", "serve.refresh"}

    def test_filter_by_kind(self, recorder):
        assert [r["name"] for r in recorder.snapshot(kind="event")] == [
            "ingest.hello"
        ]

    def test_name_matches_exact_or_dotted_prefix(self, recorder):
        assert len(recorder.snapshot(name="serve")) == 3
        assert len(recorder.snapshot(name="serve.decode")) == 2
        assert len(recorder.snapshot(name="serve.dec")) == 0


class TestSerialization:
    def test_span_json_omits_defaults(self):
        data = span("s").to_json()
        assert data == {
            "kind": "span", "name": "s", "start": 1.0,
            "duration": 0.5, "status": "ok",
        }

    def test_event_fields_round_trip(self):
        event = EventRecord(
            name="e", time=2.0, trace_id="t", fields=(("k", "v"),)
        )
        assert event.to_json() == {
            "kind": "event", "name": "e", "time": 2.0,
            "trace": "t", "fields": {"k": "v"},
        }

    def test_dump_jsonl_oldest_first(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        for i in range(6):
            recorder.record(span(f"s{i}", start=float(i)))
        out = tmp_path / "sub" / "trace.jsonl"
        assert recorder.dump_jsonl(out) == 4
        lines = out.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "s2", "s3", "s4", "s5",
        ]


class TestContext:
    def test_default_is_off(self):
        assert get_recorder() is None

    def test_use_recorder_scopes(self):
        recorder = FlightRecorder()
        with use_recorder(recorder):
            assert get_recorder() is recorder
        assert get_recorder() is None
