"""Prometheus exposition: rendering, escaping, and the round-trip contract."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.promtext import (
    escape_label_value,
    metric_name,
    parse_exposition,
    render_snapshot,
    summaries_from_samples,
)


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("serve.ingest.lines").inc(123)
    reg.counter("serve.requests", route="flows", code=200).inc(7)
    reg.gauge("serve.ingest.queue_saturation").set(0.25)
    reg.gauge("serve.source.staleness_seconds", source="node_0001.log").set(1.5)
    h = reg.histogram("serve.request.seconds", route="flows")
    for v in (0.01, 0.02, 0.03, 0.04, 0.10):
        h.observe(v)
    return reg


class TestNames:
    def test_dots_become_underscores(self):
        assert metric_name("serve.ingest.lines") == "serve_ingest_lines"

    def test_leading_digit_prefixed(self):
        assert metric_name("2fast")[0] == "_"

    def test_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRender:
    def test_families_have_type_lines(self, registry):
        text = render_snapshot(registry.snapshot())
        assert "# TYPE serve_ingest_lines counter\n" in text
        assert "# TYPE serve_ingest_queue_saturation gauge\n" in text
        assert "# TYPE serve_request_seconds summary\n" in text

    def test_deterministic(self, registry):
        snap = registry.snapshot()
        assert render_snapshot(snap) == render_snapshot(snap)

    def test_empty_snapshot_renders_empty(self):
        assert render_snapshot(MetricsRegistry().snapshot()) == ""

    def test_quantile_samples_present(self, registry):
        text = render_snapshot(registry.snapshot())
        assert 'serve_request_seconds{route="flows",quantile="0.5"}' in text
        assert 'serve_request_seconds_count{route="flows"} 5' in text


class TestRoundTrip:
    def test_counters_and_gauges_round_trip(self, registry):
        snap = registry.snapshot()
        samples, types = parse_exposition(render_snapshot(snap))
        assert samples["serve_ingest_lines"][()] == 123.0
        assert types["serve_ingest_lines"] == "counter"
        key = (("code", "200"), ("route", "flows"))
        assert samples["serve_requests"][key] == 7.0
        assert samples["serve_ingest_queue_saturation"][()] == 0.25
        stale = samples["serve_source_staleness_seconds"]
        assert stale[(("source", "node_0001.log"),)] == 1.5

    def test_histogram_summary_round_trips(self, registry):
        snap = registry.snapshot()
        samples, _ = parse_exposition(render_snapshot(snap))
        rebuilt = summaries_from_samples(
            samples, "serve_request_seconds", (("route", "flows"),)
        )
        original = snap.histograms['serve.request.seconds{route=flows}']
        assert rebuilt is not None
        assert rebuilt.count == original.count
        assert rebuilt.total == pytest.approx(original.total)
        assert rebuilt.p50 == pytest.approx(original.p50)
        assert rebuilt.p95 == pytest.approx(original.p95)
        assert rebuilt.min == pytest.approx(original.min)
        assert rebuilt.max == pytest.approx(original.max)

    def test_escaped_label_values_round_trip(self):
        reg = MetricsRegistry()
        tricky = 'weird "value" with \\slash\\ and\nnewline'
        reg.counter("c", label=tricky).inc(1)
        samples, _ = parse_exposition(render_snapshot(reg.snapshot()))
        assert samples["c"][(("label", tricky),)] == 1.0

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not a sample line")

    def test_bad_label_syntax_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("name{label=unquoted} 1")
