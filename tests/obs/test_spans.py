"""Tests for spans: timing, nesting, exception safety, null path."""

import pytest

from repro.obs.registry import MetricsRegistry, NullRegistry, use_registry
from repro.obs.spans import current_span, span


class TestTiming:
    def test_duration_lands_in_histogram(self):
        with use_registry(MetricsRegistry()) as reg:
            with span("stage"):
                pass
            h = reg.histogram("span.stage")
            assert h.count == 1
            assert h.min is not None and h.min >= 0.0

    def test_explicit_registry_overrides_active(self):
        explicit = MetricsRegistry()
        with use_registry(MetricsRegistry()) as ambient:
            with span("stage", registry=explicit):
                pass
        assert explicit.histogram("span.stage").count == 1
        assert ambient.snapshot().histograms == {}

    def test_duration_attribute_set_on_exit(self):
        with use_registry(MetricsRegistry()):
            with span("stage") as s:
                assert s.duration is None
            assert s.duration is not None and s.duration >= 0.0

    def test_labels_reach_the_histogram(self):
        with use_registry(MetricsRegistry()) as reg:
            with span("stage", shard=3):
                pass
            assert reg.snapshot().histograms["span.stage{shard=3}"].count == 1


class TestNesting:
    def test_current_span_tracks_innermost(self):
        with use_registry(MetricsRegistry()):
            assert current_span() is None
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner") as inner:
                    assert current_span() is inner
                    assert inner.parent is outer
                assert current_span() is outer
            assert current_span() is None

    def test_path_joins_the_chain(self):
        with use_registry(MetricsRegistry()):
            with span("a"):
                with span("b"):
                    with span("c") as c:
                        assert c.path == "a/b/c"

    def test_histogram_key_is_the_plain_name(self):
        # one stage = one series, regardless of what encloses it
        with use_registry(MetricsRegistry()) as reg:
            with span("outer"):
                with span("inner"):
                    pass
            with span("inner"):
                pass
            assert reg.histogram("span.inner").count == 2


class TestExceptionSafety:
    def test_span_closes_on_raise(self):
        with use_registry(MetricsRegistry()) as reg:
            with pytest.raises(ValueError):
                with span("stage"):
                    raise ValueError("boom")
            # the context-local stack unwound and the duration was recorded
            assert current_span() is None
            assert reg.histogram("span.stage").count == 1

    def test_nested_raise_unwinds_to_outer(self):
        with use_registry(MetricsRegistry()):
            with span("outer") as outer:
                with pytest.raises(ValueError):
                    with span("inner"):
                        raise ValueError("boom")
                assert current_span() is outer


class TestNullPath:
    def test_null_registry_records_nothing_but_still_nests(self):
        with use_registry(NullRegistry()) as reg:
            with span("outer") as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                    assert inner.parent is outer
            assert outer.duration is None  # timing skipped entirely
        assert reg.snapshot().histograms == {}
