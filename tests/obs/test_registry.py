"""Tests for the metrics registry: instruments, quantiles, merge, snapshots."""

import json
import pickle

import pytest

from repro.obs.registry import (
    HISTOGRAM_SAMPLE_CAP,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    get_registry,
    merge_shard_snapshots,
    use_registry,
)


class TestCounters:
    def test_inc_default_and_n(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_memoized_per_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", node=1) is reg.counter("x", node=1)
        assert reg.counter("x", node=1) is not reg.counter("x", node=2)
        assert reg.counter("x", node=1) is not reg.counter("x")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1, b=2) is reg.counter("x", b=2, a=1)


class TestHistogramQuantiles:
    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) is None
        s = h.summary()
        assert s.count == 0 and s.min is None and s.max is None
        assert s.p50 is None and s.p95 is None

    def test_single_sample_is_every_quantile(self):
        h = MetricsRegistry().histogram("h")
        h.observe(3.5)
        assert h.quantile(0.0) == 3.5
        assert h.quantile(0.5) == 3.5
        assert h.quantile(0.95) == 3.5
        assert h.quantile(1.0) == 3.5
        s = h.summary()
        assert s.count == 1 and s.min == s.max == s.p50 == s.p95 == 3.5

    def test_nearest_rank_many_samples(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(1.0) == 100.0
        assert h.summary().max == 100.0

    def test_quantile_out_of_range_rejected(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_sample_cap_keeps_exact_aggregates(self):
        h = MetricsRegistry().histogram("h")
        n = HISTOGRAM_SAMPLE_CAP + 100
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.max == float(n - 1)  # exact even though the sample is capped
        assert len(h._samples) <= HISTOGRAM_SAMPLE_CAP

    def test_retention_stays_bounded_and_covers_the_stream(self):
        # a long-running daemon's histogram must not grow without limit,
        # and the retained subsample must span the whole stream (a
        # first-N policy would freeze quantiles at the first minutes)
        h = MetricsRegistry().histogram("h")
        n = HISTOGRAM_SAMPLE_CAP * 8
        for v in range(n):
            h.observe(float(v))
        assert len(h._samples) <= HISTOGRAM_SAMPLE_CAP
        assert h._samples[0] == 0.0
        assert max(h._samples) > 0.9 * (n - 1)
        # quantiles track the full stream, not its prefix
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.01)
        assert h.quantile(0.95) == pytest.approx(0.95 * n, rel=0.01)

    def test_retention_is_deterministic(self):
        def build():
            h = MetricsRegistry().histogram("h")
            for v in range(HISTOGRAM_SAMPLE_CAP * 3 + 17):
                h.observe(float(v % 997))
            return h

        a, b = build(), build()
        assert a._samples == b._samples
        assert a.summary() == b.summary()


class TestMerge:
    def test_counters_add_and_histograms_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b", node=7).inc(1)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(9.0)
        b.gauge("g").set(5.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("only_b", node=7).value == 1
        h = a.histogram("h")
        assert h.count == 2 and h.min == 1.0 and h.max == 9.0
        assert a.gauge("g").value == 5.0

    def test_merge_is_associative_over_counters(self):
        parts = []
        for inc in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter("c").inc(inc)
            parts.append(reg)
        left = MetricsRegistry()
        for p in parts:
            left.merge(p)
        right = MetricsRegistry()
        tail = MetricsRegistry()
        tail.merge(parts[1])
        tail.merge(parts[2])
        right.merge(parts[0])
        right.merge(tail)
        assert left.counter("c").value == right.counter("c").value == 6

    def test_registry_pickles_for_worker_transport(self):
        reg = MetricsRegistry()
        reg.counter("c", node=3).inc(4)
        reg.histogram("h").observe(1.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("c", node=3).value == 4
        assert clone.histogram("h").count == 1


class TestSnapshot:
    def test_flat_names_and_values(self):
        reg = MetricsRegistry()
        reg.counter("events", kind="recv").inc(7)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat").observe(0.25)
        snap = reg.snapshot()
        assert snap.counters == {"events{kind=recv}": 7}
        assert snap.gauges == {"depth": 2.0}
        assert snap.histograms["lat"].count == 1

    def test_json_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(1)
            reg.counter("a", z=1, a=2).inc(2)
            reg.histogram("h").observe(1.0)
            return reg.snapshot().to_json_str()

        text = build()
        assert text == build()
        data = json.loads(text)
        assert list(data["counters"]) == sorted(data["counters"])

    def test_clear_resets_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.bind_cache["k"] = object()
        reg.clear()
        assert reg.snapshot().counters == {}
        assert reg.bind_cache == {}


class TestNullRegistry:
    def test_records_nothing(self):
        reg = NullRegistry()
        reg.counter("c", node=1).inc(5)
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap.counters == {} and snap.gauges == {} and snap.histograms == {}
        assert not reg.enabled

    def test_merge_is_noop(self):
        reg = NullRegistry()
        other = MetricsRegistry()
        other.counter("c").inc(9)
        reg.merge(other)
        assert reg.snapshot().counters == {}


class TestActiveRegistry:
    def test_default_is_enabled(self):
        assert get_registry().enabled

    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        inner = MetricsRegistry()
        with use_registry(inner) as reg:
            assert reg is inner
            assert get_registry() is inner
        assert get_registry() is outer

    def test_use_registry_restores_on_exception(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is outer


class TestSnapshotJsonRoundTrip:
    def test_from_json_inverts_to_json(self):
        reg = MetricsRegistry()
        reg.counter("events", kind="recv").inc(7)
        reg.gauge("depth").set(2.0)
        for v in (0.25, 0.5, 4.0):
            reg.histogram("lat").observe(v)
        snap = reg.snapshot()
        clone = MetricsSnapshot.from_json(json.loads(snap.to_json_str()))
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.to_json() == snap.to_json()

    def test_from_json_tolerates_empty_histograms(self):
        snap = MetricsSnapshot.from_json(
            {"counters": {}, "gauges": {}, "histograms": {
                "h": {"count": 0, "total": 0.0, "min": None, "max": None,
                      "p50": None, "p95": None},
            }}
        )
        assert snap.histograms["h"].count == 0
        assert snap.histograms["h"].min is None


class TestMergeShardSnapshots:
    def _shard_snap(self, lines: int, lag: float) -> "MetricsSnapshot":
        reg = MetricsRegistry()
        reg.counter("serve.ingest.lines").inc(lines)
        reg.counter("codec.corrupt_lines", source="a.log").inc(1)
        reg.gauge("serve.ingest.lag_lines").set(lag)
        reg.histogram("serve.request.seconds", route="/flows").observe(0.1)
        return reg.snapshot()

    def test_counters_sum_unlabeled(self):
        local = MetricsRegistry()
        merged = merge_shard_snapshots(
            local.snapshot(),
            [(0, self._shard_snap(10, 1.0)), (1, self._shard_snap(32, 2.0))],
        )
        assert merged.counters["serve.ingest.lines"] == 42
        assert merged.counters["codec.corrupt_lines{source=a.log}"] == 2

    def test_gauges_and_histograms_get_shard_labels(self):
        local = MetricsRegistry()
        local.gauge("serve.ingest.lag_lines").set(0.0)  # the router's own
        merged = merge_shard_snapshots(
            local.snapshot(),
            [(0, self._shard_snap(1, 3.0)), (1, self._shard_snap(1, 4.0))],
        )
        assert merged.gauges["serve.ingest.lag_lines"] == 0.0
        assert merged.gauges["serve.ingest.lag_lines{shard=0}"] == 3.0
        assert merged.gauges["serve.ingest.lag_lines{shard=1}"] == 4.0
        # existing labels stay, and the label set is re-sorted canonically
        assert (
            "serve.request.seconds{route=/flows,shard=0}" in merged.histograms
        )

    def test_local_counters_also_participate_in_the_sum(self):
        local = MetricsRegistry()
        local.counter("serve.requests", route="/flows", code=200).inc(5)
        merged = merge_shard_snapshots(
            local.snapshot(), [(0, self._shard_snap(1, 0.0))]
        )
        assert merged.counters["serve.requests{code=200,route=/flows}"] == 5
        assert merged.counters["serve.ingest.lines"] == 1
