"""Tests for the structured logger: formats, gating, binding."""

import io
import json

import pytest

from repro.obs.structlog import (
    DEBUG,
    ERROR,
    INFO,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def _clean_config():
    reset_logging()
    yield
    reset_logging()


def capture():
    stream = io.StringIO()
    configure_logging(stream=stream)
    return stream


class TestKvFormat:
    def test_basic_line(self):
        stream = capture()
        get_logger("t").info("hello", n=3)
        assert stream.getvalue() == "level=info logger=t event=hello n=3\n"

    def test_values_with_spaces_are_quoted(self):
        stream = capture()
        get_logger("t").info("msg", path="a b")
        assert 'path="a b"' in stream.getvalue()

    def test_floats_are_compact(self):
        stream = capture()
        get_logger("t").info("msg", ratio=0.3333333333)
        assert "ratio=0.333333" in stream.getvalue()


class TestJsonFormat:
    def test_one_object_per_line(self):
        stream = capture()
        configure_logging(json_lines=True)
        log = get_logger("t")
        log.info("first", a=1)
        log.warning("second")
        lines = stream.getvalue().splitlines()
        assert [json.loads(l)["event"] for l in lines] == ["first", "second"]
        assert json.loads(lines[0]) == {
            "level": "info", "logger": "t", "event": "first", "a": 1,
        }


class TestGating:
    def test_default_level_is_info(self):
        stream = capture()
        log = get_logger("t")
        log.debug("hidden")
        log.info("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_error_level_silences_info(self):
        stream = capture()
        configure_logging(ERROR)
        log = get_logger("t")
        log.info("hidden")
        log.warning("hidden-too")
        log.error("shown")
        assert stream.getvalue().count("\n") == 1
        assert "event=shown" in stream.getvalue()

    def test_level_by_name(self):
        stream = capture()
        configure_logging("debug")
        get_logger("t").debug("shown")
        assert "shown" in stream.getvalue()
        with pytest.raises(ValueError):
            configure_logging("loud")


class TestBinding:
    def test_bound_fields_on_every_line(self):
        stream = capture()
        log = get_logger("t").bind(run=7)
        log.info("a")
        log.info("b", extra=1)
        lines = stream.getvalue().splitlines()
        assert all("run=7" in line for line in lines)
        assert "extra=1" in lines[1]

    def test_call_fields_override_bound(self):
        stream = capture()
        log = get_logger("t").bind(node=1)
        log.info("a", node=2)
        assert "node=2" in stream.getvalue()
        assert "node=1" not in stream.getvalue()

    def test_timestamps_opt_in(self):
        stream = capture()
        configure_logging(timestamps=True)
        get_logger("t").info("a")
        assert stream.getvalue().startswith("ts=")
