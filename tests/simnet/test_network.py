"""Integration tests for the network orchestrator and ground truth."""

import pytest

from repro.events.event import EventType
from repro.simnet.network import Network, NodeParams, ScenarioParams
from repro.simnet.scenarios import DAY, citysee, run_scenario, small_network
from repro.simnet.sinkpath import BaseStationModel, SerialLink
from repro.simnet.truth import TrueCause, TrueFate


@pytest.fixture(scope="module")
def small_result():
    return run_scenario(small_network(n_nodes=25, minutes=30))


class TestSmallRun:
    def test_every_packet_has_exactly_one_fate(self, small_result):
        truth = small_result.truth
        assert len(truth.fates) == len(truth.gen_times)
        assert set(truth.fates) == set(truth.gen_times)

    def test_delivery_ratio_sane(self, small_result):
        assert 0.5 < small_result.delivery_ratio() <= 1.0

    def test_delivered_packets_have_bs_recv(self, small_result):
        bs = small_result.base_station_node
        bs_log_packets = {e.packet for e in small_result.true_logs[bs]}
        for packet in small_result.truth.delivered_packets():
            assert packet in bs_log_packets

    def test_bs_arrivals_match_delivered(self, small_result):
        delivered = set(small_result.truth.delivered_packets())
        arrived = {p for p, _ in small_result.bs_arrivals}
        assert arrived == delivered

    def test_true_logs_ordered_by_time_per_node(self, small_result):
        for node, log in small_result.true_logs.items():
            times = [e.time for e in log]
            assert times == sorted(times), f"node {node} log out of order"

    def test_gen_events_only_at_origin(self, small_result):
        for node, log in small_result.true_logs.items():
            for event in log:
                if event.etype == EventType.GEN.value:
                    assert event.packet.origin == node

    def test_sender_receiver_sides_recorded_correctly(self, small_result):
        for node, log in small_result.true_logs.items():
            for e in log:
                if e.etype in ("trans", "ack_recvd", "timeout"):
                    assert e.src == node
                elif e.etype in ("recv", "dup", "overflow"):
                    assert e.dst == node

    def test_sink_generates_no_packets(self, small_result):
        sink = small_result.sink
        assert all(p.origin != sink for p in small_result.truth.fates)

    def test_truth_event_sequences_are_time_ordered(self, small_result):
        for _packet, events in small_result.truth.events.items():
            times = [e.time for e in events]
            assert times == sorted(times)


class TestFateSemantics:
    def test_in_node_loss_last_event_at_position_is_recv(self, small_result):
        # the global last true event may be the sender's ack (same instant);
        # the last event recorded *on the failing node* must be the receive
        truth = small_result.truth
        for packet, fate in truth.fates.items():
            if fate.cause is TrueCause.IN_NODE:
                at_position = [e for e in truth.events[packet] if e.node == fate.position]
                assert at_position[-1].etype == EventType.RECV.value

    def test_serial_loss_positioned_at_sink(self, small_result):
        for fate in small_result.truth.fates.values():
            if fate.cause is TrueCause.SERIAL:
                assert fate.position == small_result.sink

    def test_timeout_loss_last_events(self, small_result):
        truth = small_result.truth
        for packet, fate in truth.fates.items():
            if fate.cause is TrueCause.TIMEOUT:
                types = [e.etype for e in truth.events[packet]]
                assert "timeout" in types

    def test_fate_double_record_rejected(self):
        from repro.events.packet import PacketKey
        from repro.simnet.truth import GroundTruth
        truth = GroundTruth()
        truth.record_fate(PacketKey(1, 1), TrueFate(TrueCause.DELIVERED, 9, 1.0))
        with pytest.raises(ValueError):
            truth.record_fate(PacketKey(1, 1), TrueFate(TrueCause.TIMEOUT, 1, 2.0))


class TestScenarioMechanisms:
    def test_server_outage_produces_outage_losses(self):
        params = small_network(n_nodes=16, minutes=20).with_(
            base_station=BaseStationModel(outages=((300.0, 900.0),)),
            serial=SerialLink(unstable_quality=1.0, fixed_quality=1.0),
        )
        result = run_scenario(params)
        counts = result.truth.loss_counts()
        assert counts.get(TrueCause.OUTAGE, 0) > 0
        # outage fates fall inside the window
        for fate in result.truth.fates.values():
            if fate.cause is TrueCause.OUTAGE:
                assert 300.0 <= fate.time < 900.0

    def test_serial_fix_reduces_serial_losses(self):
        def serial_losses(fix_time):
            params = small_network(n_nodes=16, minutes=30).with_(
                serial=SerialLink(unstable_quality=0.5, fix_time=fix_time),
            )
            result = run_scenario(params)
            return result.truth.loss_counts().get(TrueCause.SERIAL, 0), len(result.truth.fates)

        broken, n1 = serial_losses(float("inf"))
        fixed, n2 = serial_losses(0.0)
        assert broken / n1 > 5 * max(fixed, 1) / n2

    def test_task_failures_scale_with_probability(self):
        def in_node(p):
            params = small_network(n_nodes=16, minutes=30).with_(
                node=NodeParams(task_fail_p=p),
            )
            return run_scenario(params).truth.loss_counts().get(TrueCause.IN_NODE, 0)

        assert in_node(0.0) == 0
        assert in_node(0.2) > 10

    def test_tiny_queue_overflows_under_sync_bursts(self):
        params = small_network(n_nodes=25, minutes=30).with_(
            node=NodeParams(queue_capacity=1),
            gen_sync_window=1.0,
        )
        result = run_scenario(params)
        assert result.truth.loss_counts().get(TrueCause.OVERFLOW, 0) > 0

    def test_determinism(self):
        a = run_scenario(small_network(n_nodes=12, minutes=10))
        b = run_scenario(small_network(n_nodes=12, minutes=10))
        assert a.truth.fates == b.truth.fates
        assert {n: log.events for n, log in a.true_logs.items()} == {
            n: log.events for n, log in b.true_logs.items()
        }


class TestCityseePreset:
    def test_preset_mechanism_coverage(self):
        # a short slice of the CitySee preset exercises every loss class
        result = run_scenario(citysee(n_nodes=80, days=3))
        counts = {str(k): v for k, v in result.truth.loss_counts().items()}
        assert counts.get("serial", 0) > 0
        assert counts.get("server_outage", 0) > 0
        assert counts.get("in_node", 0) > 0
        assert 0.6 < result.delivery_ratio() < 0.98

    def test_snow_days_degrade_delivery(self):
        result = run_scenario(
            citysee(n_nodes=60, days=3, snow_days=(1,), outage_fraction=0.0)
        )
        by_day = [[0, 0], [0, 0], [0, 0]]  # [delivered, total] per day
        truth = result.truth
        for packet, t in truth.gen_times.items():
            day = min(2, int(t // DAY))
            by_day[day][1] += 1
            by_day[day][0] += truth.fates[packet].delivered
        rates = [d / t for d, t in by_day if t]
        assert rates[1] < rates[0] and rates[1] < rates[2]
