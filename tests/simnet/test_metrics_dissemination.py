"""Unit tests for network metrics and the dissemination simulator."""

import pytest

from repro.simnet.dissemination import DisseminationParams, run_dissemination
from repro.simnet.metrics import summarize
from repro.simnet.scenarios import run_scenario, small_network


@pytest.fixture(scope="module")
def sim_result():
    return run_scenario(small_network(n_nodes=20, minutes=20))


class TestNetworkMetrics:
    def test_summary_consistent_with_truth(self, sim_result):
        report = summarize(sim_result)
        assert report.packets == len(sim_result.truth.fates)
        assert report.delivered == len(sim_result.truth.delivered_packets())
        assert 0.0 < report.delivery_ratio <= 1.0
        assert report.loss_counts == sim_result.truth.loss_counts()

    def test_per_origin_delivery_bounded(self, sim_result):
        report = summarize(sim_result)
        for origin, ratio in report.per_origin_delivery.items():
            assert 0.0 <= ratio <= 1.0
            assert origin != sim_result.sink  # sink generates nothing

    def test_hop_histogram_positive(self, sim_result):
        report = summarize(sim_result)
        assert sum(report.hop_histogram.values()) == report.delivered
        assert report.mean_hops() >= 1.0

    def test_forwarding_load_excludes_origin_work(self, sim_result):
        report = summarize(sim_result)
        # the sink relays (terminates) almost everything delivered
        assert report.node_forwarding_load[sim_result.sink] > 0


class TestTruePath:
    def test_paths_start_at_origin(self, sim_result):
        bs = sim_result.base_station_node
        for packet in list(sim_result.truth.fates)[:50]:
            path = sim_result.truth.true_path(packet, exclude=frozenset({bs}))
            assert path[0] == packet.origin

    def test_delivered_paths_end_at_sink(self, sim_result):
        bs = sim_result.base_station_node
        for packet in sim_result.truth.delivered_packets()[:50]:
            path = sim_result.truth.true_path(packet, exclude=frozenset({bs}))
            assert path[-1] == sim_result.sink


class TestDisseminationSimulator:
    def test_deterministic(self):
        params = DisseminationParams(n_nodes=12, seed=4)
        a = run_dissemination(params)
        b = run_dissemination(params)
        assert a.applied == b.applied
        assert a.completed == b.completed

    def test_completion_implies_full_coverage(self):
        result = run_dissemination(DisseminationParams(n_nodes=16, seed=2, updates=4))
        for update, done in result.completed.items():
            if done:
                assert result.applied[update] == frozenset(result.targets)

    def test_adv_carries_targets_info(self):
        result = run_dissemination(DisseminationParams(n_nodes=12, seed=1))
        advs = [e for e in result.true_logs[result.seeder] if e.etype == "adv"]
        assert advs
        targets = advs[0].info_dict["targets"]
        assert {int(t) for t in targets.split(",")} == set(result.targets)

    def test_receivers_log_their_own_events_only(self):
        result = run_dissemination(DisseminationParams(n_nodes=12, seed=1))
        for node, log in result.true_logs.items():
            for event in log:
                assert event.node == node
