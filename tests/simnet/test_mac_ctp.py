"""Unit tests for the MAC and CTP routing layers."""

import pytest

from repro.simnet.ctp import CtpParams, CtpRouting, INFINITE_ETX, MAX_LINK_ETX
from repro.simnet.link import Disturbance, LinkModel, LinkParams
from repro.simnet.mac import LplMac, MacOutcome, MacParams
from repro.simnet.topology import make_grid_topology
from repro.util.rng import RngStreams


def make_link(n=16, disturbances=(), seed=5):
    topo = make_grid_topology(n, RngStreams(seed), spacing=50.0, jitter=0.0)
    return topo, LinkModel(topo, RngStreams(seed), LinkParams(), disturbances)


class TestMacParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            MacParams(max_retries=0)
        with pytest.raises(ValueError):
            MacParams(attempt_time=0)


class TestLplMac:
    def test_good_link_delivers_and_acks(self):
        topo, link = make_link()
        mac = LplMac(link, RngStreams(1))
        outcomes = [mac.send(1, 2, 0.0) for _ in range(200)]
        acked = sum(o.acked for o in outcomes)
        assert acked >= 195  # PRR ~0.95+ with 30 retries
        assert all(o.delivered for o in outcomes if o.acked)

    def test_dead_link_times_out(self):
        topo, link = make_link(disturbances=[Disturbance(0.0, 1e9, 0.0)])
        mac = LplMac(link, RngStreams(2))
        outcome = mac.send(1, 2, 10.0)
        assert not outcome.delivered and not outcome.acked
        assert outcome.attempts == 30
        assert outcome.duration == pytest.approx(30 * MacParams().attempt_time)

    def test_marginal_link_shows_delivered_without_ack(self):
        topo, link = make_link(disturbances=[Disturbance(0.0, 1e9, 0.12)])
        mac = LplMac(link, RngStreams(3))
        outcomes = [mac.send(1, 2, 10.0) for _ in range(500)]
        # the interesting asymmetry exists: receiver has it, sender gave up
        assert any(o.delivered and not o.acked for o in outcomes)
        assert any(not o.delivered for o in outcomes)

    def test_duration_grows_with_attempts(self):
        topo, link = make_link()
        mac = LplMac(link, RngStreams(4))
        o = mac.send(1, 2, 0.0)
        assert o.duration == pytest.approx(o.attempts * MacParams().attempt_time)


class TestCtpRouting:
    def make_routing(self, n=25, disturbances=(), params=CtpParams(loop_churn_p=0.0)):
        topo, link = make_link(n, disturbances)
        return topo, CtpRouting(topo, link, RngStreams(7), params)

    def test_initial_state(self):
        topo, routing = self.make_routing()
        assert routing.path_etx[topo.sink] == 0.0
        assert all(routing.parent[n] is None for n in topo.nodes)

    def test_converge_builds_tree(self):
        topo, routing = self.make_routing()
        routing.converge(0.0)
        assert routing.routed_fraction() == 1.0
        # the tree is acyclic and reaches the sink
        for node in topo.nodes:
            seen = set()
            cur = node
            while cur != topo.sink:
                assert cur not in seen, "routing loop after convergence"
                seen.add(cur)
                cur = routing.parent[cur]
                assert cur is not None

    def test_path_etx_monotone_toward_sink(self):
        topo, routing = self.make_routing()
        routing.converge(0.0)
        for node in topo.nodes:
            if node == topo.sink:
                continue
            parent = routing.parent[node]
            assert routing.path_etx[node] > routing.path_etx[parent]

    def test_link_etx_caps(self):
        topo, routing = self.make_routing()
        routing.converge(0.0)
        etx = routing.link_etx(1, 2, 0.0)
        assert 1.0 <= etx <= MAX_LINK_ETX

    def test_churn_can_create_transient_loops(self):
        topo, routing = self.make_routing(params=CtpParams(loop_churn_p=0.5))
        routing.converge(0.0)
        loops = 0
        for _ in range(20):
            routing.beacon_round(0.0)
            for node in topo.nodes:
                seen = set()
                cur = node
                while cur is not None and cur != topo.sink and cur not in seen:
                    seen.add(cur)
                    cur = routing.parent[cur]
                if cur is not None and cur != topo.sink:
                    loops += 1
        assert loops > 0

    def test_smoothing_damps_flapping(self):
        # a violent on/off disturbance flips instantaneous PRR; the smoothed
        # estimator changes gradually, so parents stay stable
        blinks = [Disturbance(float(i), float(i) + 0.5, 0.1) for i in range(0, 60, 2)]
        topo, routing = self.make_routing(disturbances=blinks)
        routing.converge(0.0)
        parents_before = dict(routing.parent)
        switches = 0
        for i in range(20):
            routing.beacon_round(float(i))
            switches += sum(
                1 for n in topo.nodes if routing.parent[n] != parents_before[n]
            )
            parents_before = dict(routing.parent)
        # a few switches are fine; instantaneous ETX would flip most nodes
        assert switches < 20 * len(topo.nodes) * 0.2
