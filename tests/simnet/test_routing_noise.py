"""Tests for packet-less routing events in the logs (parent changes)."""

import pytest

from repro.core.refill import Refill
from repro.events.log import NodeLog
from repro.simnet.scenarios import citysee, run_scenario


@pytest.fixture(scope="module")
def result():
    # a short CitySee slice with bursts: link churn guarantees switches
    return run_scenario(citysee(n_nodes=60, days=1, seed=37))


class TestParentChangeEvents:
    def test_parent_changes_are_logged(self, result):
        changes = [
            e
            for log in result.true_logs.values()
            for e in log
            if e.etype == "parent_change"
        ]
        assert changes, "link churn must produce parent switches"
        for event in changes:
            assert event.packet is None
            assert "new" in event.info_dict

    def test_refill_ignores_routing_noise(self, result):
        refill = Refill()
        with_noise = refill.reconstruct(result.true_logs)
        stripped = {
            node: NodeLog(node, (e for e in log if e.etype != "parent_change"))
            for node, log in result.true_logs.items()
        }
        without_noise = refill.reconstruct(stripped)
        assert set(with_noise) == set(without_noise)
        sample = sorted(with_noise)[:100]
        for packet in sample:
            assert with_noise[packet].labels() == without_noise[packet].labels()

    def test_switch_events_correlate_with_route_timelines(self, result):
        """The two independent views of routing churn agree in direction."""
        from repro.analysis.routes import route_timelines, network_churn

        refill = Refill()
        flows = refill.reconstruct(result.true_logs)
        timelines = route_timelines(
            flows, exclude=frozenset({result.base_station_node})
        )
        observed_churn = network_churn(timelines)
        switch_count = sum(
            1
            for log in result.true_logs.values()
            for e in log
            if e.etype == "parent_change"
        )
        # both views see instability (non-zero), or neither does
        assert (observed_churn > 0) == (switch_count > 0)
