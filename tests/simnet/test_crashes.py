"""Tests for the runtime node-crash fault model."""

import pytest

from repro.analysis.pipeline import evaluate
from repro.core.diagnosis import LossCause
from repro.simnet.network import CrashParams
from repro.simnet.scenarios import run_scenario, small_network
from repro.simnet.truth import TrueCause


def crashy_params(rate=6.0, minutes=30.0, n_nodes=25):
    return small_network(n_nodes=n_nodes, minutes=minutes).with_(
        crash=CrashParams(rate_per_day=rate, day_seconds=3600.0, repair_time=300.0),
    )


class TestCrashParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashParams(rate_per_day=-1)
        with pytest.raises(ValueError):
            CrashParams(repair_time=0)

    def test_zero_rate_schedules_nothing(self):
        baseline = run_scenario(small_network(n_nodes=15, minutes=10))
        assert TrueCause.CRASH not in baseline.truth.loss_counts()


class TestCrashBehavior:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(crashy_params())

    def test_crash_and_timeout_losses_appear(self, result):
        counts = result.truth.loss_counts()
        # neighbours of dead nodes time out; queued packets die in the node
        assert counts.get(TrueCause.TIMEOUT, 0) > 0

    def test_crashed_packets_keep_their_recv_log(self, result):
        truth = result.truth
        for packet, fate in truth.fates.items():
            if fate.cause is TrueCause.CRASH:
                events_at_node = [
                    e for e in truth.events[packet] if e.node == fate.position
                ]
                if events_at_node:
                    # the flash log survived the crash: the recv is recorded
                    assert any(e.etype in ("recv", "gen") for e in events_at_node)

    def test_network_keeps_delivering(self, result):
        # crashes degrade, not destroy: routing heals around dead nodes
        assert result.delivery_ratio() > 0.4

    def test_determinism_with_crashes(self):
        a = run_scenario(crashy_params(minutes=10, n_nodes=15))
        b = run_scenario(crashy_params(minutes=10, n_nodes=15))
        assert a.truth.fates == b.truth.fates


class TestCrashMechanics:
    def test_queue_resident_packets_die_with_the_node(self):
        """Drive the crash path directly: queued packets get CRASH fates."""
        from repro.events.packet import PacketKey
        from repro.simnet.network import Network

        net = Network(crashy_params(rate=0.0, minutes=5, n_nodes=15))
        node = next(n for n in net.topology.nodes if n != net.topology.sink)
        p1, p2 = PacketKey(node, 1), PacketKey(node, 2)
        net.truth.record_gen(p1, 0.0)
        net.truth.record_gen(p2, 0.0)
        net._fifo[node].append((p1, 0))
        net._fifo[node].append((p2, 0))
        net._make_crash(node)()
        assert not net._alive[node]
        assert len(net._fifo[node]) == 0
        assert net.truth.fates[p1].cause is TrueCause.CRASH
        assert net.truth.fates[p1].position == node
        assert net.truth.fates[p2].cause is TrueCause.CRASH
        net._make_repair(node)()
        assert net._alive[node]

    def test_send_to_dead_parent_times_out(self):
        from repro.events.packet import PacketKey
        from repro.simnet.network import Network

        net = Network(crashy_params(rate=0.0, minutes=5, n_nodes=15))
        net.routing.converge(0.0)
        node = next(
            n for n in net.topology.nodes
            if n != net.topology.sink and net.routing.parent[n] is not None
        )
        parent = net.routing.parent[node]
        net._alive[parent] = False
        packet = PacketKey(node, 1)
        net.truth.record_gen(packet, 0.0)
        duration = net._transmit(node, packet, hops=0)
        assert duration == pytest.approx(
            net.params.mac.max_retries * net.params.mac.attempt_time
        )
        net.sim.run()  # flush the timeout logger
        assert net.truth.fates[packet].cause is TrueCause.TIMEOUT
        types = [e.etype for e in net.logs[node]]
        assert types == ["trans", "timeout"]


class TestCrashDiagnosis:
    def test_refill_attributes_crash_losses_to_the_node(self):
        result = evaluate(crashy_params(rate=4.0, minutes=40.0))
        truth = result.sim.truth
        crashed = [
            p for p, f in truth.fates.items() if f.cause is TrueCause.CRASH
        ]
        if not crashed:
            pytest.skip("no queue-resident crash losses in this seed")
        hits = 0
        scored = 0
        for packet in crashed:
            report = result.reports.get(packet)
            if report is None:
                continue
            scored += 1
            hits += report.cause in (
                LossCause.RECEIVED_LOSS,
                LossCause.ACKED_LOSS,
                LossCause.UNKNOWN,
            ) and (
                report.position == truth.fates[packet].position
                or report.cause is LossCause.UNKNOWN
            )
        assert scored == 0 or hits / scored > 0.7
