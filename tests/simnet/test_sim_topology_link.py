"""Unit tests for the DES core, topology and link model."""

import pytest

from repro.simnet.link import Disturbance, LinkModel, LinkParams
from repro.simnet.sim import Simulator
from repro.simnet.topology import Topology, make_grid_topology
from repro.util.rng import RngStreams


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.at(2.0, lambda: seen.append("b"))
        sim.at(1.0, lambda: seen.append("a"))
        sim.at(3.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_run == 3

    def test_fifo_tie_break(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append(1))
        sim.at(1.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1, 2]

    def test_after_and_nested_scheduling(self):
        sim = Simulator()
        seen = []
        def first():
            seen.append(sim.now)
            sim.after(5.0, lambda: seen.append(sim.now))
        sim.at(1.0, first)
        sim.run()
        assert seen == [1.0, 6.0]

    def test_run_until_keeps_later_events(self):
        sim = Simulator()
        seen = []
        sim.at(1.0, lambda: seen.append("a"))
        sim.at(10.0, lambda: seen.append("b"))
        sim.run(until=5.0)
        assert seen == ["a"]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert seen == ["a", "b"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)


class TestTopology:
    def test_grid_shape_and_ids(self):
        topo = make_grid_topology(30, RngStreams(1))
        assert len(topo.positions) == 30
        assert sorted(topo.positions) == list(range(1, 31))
        assert topo.base_station == 31
        assert topo.sink in topo.positions

    def test_sink_near_centroid(self):
        topo = make_grid_topology(49, RngStreams(2), jitter=0.0)
        cx = sum(p[0] for p in topo.positions.values()) / 49
        cy = sum(p[1] for p in topo.positions.values()) / 49
        sx, sy = topo.positions[topo.sink]
        # the sink is the node closest to the centroid
        for _node, (x, y) in topo.positions.items():
            assert ((sx - cx) ** 2 + (sy - cy) ** 2) <= ((x - cx) ** 2 + (y - cy) ** 2) + 1e-9

    def test_neighbors_symmetric_within_range(self):
        topo = make_grid_topology(25, RngStreams(3))
        for node in topo.nodes:
            for nbr in topo.neighbors(node):
                assert node in topo.neighbors(nbr)
                assert topo.distance(node, nbr) <= topo.radio_range

    def test_connected_to_sink_with_default_density(self):
        topo = make_grid_topology(36, RngStreams(4))
        assert topo.connected_to_sink() == set(topo.nodes)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_grid_topology(1, RngStreams(0))
        with pytest.raises(ValueError):
            Topology({1: (0, 0)}, sink=2, base_station=3, radio_range=10)


class TestDisturbance:
    def test_validation(self):
        with pytest.raises(ValueError):
            Disturbance(5.0, 5.0, 0.5)
        with pytest.raises(ValueError):
            Disturbance(0.0, 1.0, 1.5)

    def test_active_window(self):
        d = Disturbance(10.0, 20.0, 0.5)
        assert not d.active(9.9)
        assert d.active(10.0)
        assert d.active(19.9)
        assert not d.active(20.0)

    def test_regional_affects(self):
        d = Disturbance(0, 1, 0.5, center=(0.0, 0.0), radius=10.0)
        assert d.affects((3.0, 4.0))
        assert not d.affects((30.0, 40.0))
        globally = Disturbance(0, 1, 0.5)
        assert globally.affects((1e9, 1e9))


class TestLinkModel:
    def make(self, disturbances=()):
        topo = make_grid_topology(16, RngStreams(5), spacing=50.0, jitter=0.0, radio_range=80.0)
        return topo, LinkModel(topo, RngStreams(5), LinkParams(), disturbances)

    def test_prr_decays_with_distance(self):
        topo, link = self.make()
        # node 1 at (0,0); node 2 at (50,0); node 3 at (100,0) out of range
        close = link.base_prr(1, 2)
        assert 0.8 <= close <= 1.0
        assert link.base_prr(1, 3) == 0.0

    def test_base_prr_symmetric_and_cached(self):
        topo, link = self.make()
        assert link.base_prr(1, 2) == link.base_prr(2, 1)

    def test_global_disturbance_scales_prr(self):
        topo, link0 = self.make()
        topo2, link = self.make([Disturbance(100.0, 200.0, 0.5)])
        before = link.prr(1, 2, 50.0)
        during = link.prr(1, 2, 150.0)
        after = link.prr(1, 2, 250.0)
        assert during == pytest.approx(before * 0.5)
        assert after == pytest.approx(before)

    def test_regional_disturbance_spares_far_links(self):
        topo, link = self.make(
            [Disturbance(0.0, 100.0, 0.1, center=(0.0, 0.0), radius=30.0)]
        )
        # nodes 1,2 near origin; nodes 15,16 far away (75,150)/(100+..)
        near = link.prr(1, 2, 50.0)
        far_nodes = [n for n in topo.nodes if topo.positions[n][1] >= 100]
        a, b = far_nodes[0], far_nodes[1]
        assert near < link.base_prr(1, 2)
        assert link.prr(a, b, 50.0) == pytest.approx(link.base_prr(a, b))

    def test_stacked_disturbances_multiply(self):
        topo, link = self.make(
            [Disturbance(0.0, 100.0, 0.5), Disturbance(50.0, 100.0, 0.5)]
        )
        base = link.base_prr(1, 2)
        assert link.prr(1, 2, 25.0) == pytest.approx(base * 0.5)
        assert link.prr(1, 2, 75.0) == pytest.approx(base * 0.25)

    def test_nonmonotonic_time_queries(self):
        # the active-window cache must handle out-of-order queries
        topo, link = self.make([Disturbance(10.0, 20.0, 0.5)])
        base = link.base_prr(1, 2)
        assert link.prr(1, 2, 15.0) == pytest.approx(base * 0.5)
        assert link.prr(1, 2, 5.0) == pytest.approx(base)
        assert link.prr(1, 2, 15.0) == pytest.approx(base * 0.5)
