"""Unit tests for scenario preset construction."""

import math

import pytest

from repro.simnet.link import Disturbance
from repro.simnet.network import ScenarioParams
from repro.simnet.scenarios import DAY, citysee, small_network


class TestCityseePreset:
    def test_durations_and_intervals(self):
        params = citysee(n_nodes=50, days=10, packets_per_node_per_day=24)
        assert params.duration == 10 * DAY
        assert params.gen_interval == pytest.approx(DAY / 24)
        assert params.gen_sync_window == 10.0

    def test_snow_days_clamped_to_run_length(self):
        short = citysee(n_nodes=50, days=3, snow_days=(8, 9))
        global_disturbances = [
            d for d in short.disturbances if d.center is None
        ]
        assert global_disturbances == []
        long = citysee(n_nodes=50, days=12, snow_days=(8, 9))
        snows = [d for d in long.disturbances if d.center is None]
        assert [d.start for d in snows] == [8 * DAY, 9 * DAY]
        # serial weather windows mirror the snow days
        assert [w[0] for w in long.serial.weather_windows] == [8 * DAY, 9 * DAY]

    def test_sink_fix_day(self):
        fixed = citysee(n_nodes=50, days=30, sink_fix_day=23)
        assert fixed.serial.fix_time == 23 * DAY
        never = citysee(n_nodes=50, days=30, sink_fix_day=None)
        assert never.serial.fix_time == float("inf")
        beyond = citysee(n_nodes=50, days=10, sink_fix_day=23)
        assert beyond.serial.fix_time == float("inf")

    def test_outage_fraction_zero_means_no_outages(self):
        params = citysee(n_nodes=50, days=5, outage_fraction=0.0)
        assert params.base_station.outages == ()

    def test_outage_windows_cover_requested_fraction(self):
        params = citysee(n_nodes=50, days=10, outage_fraction=0.05)
        total = sum(e - s for s, e in params.base_station.outages)
        assert total >= 0.05 * params.duration
        for start, end in params.base_station.outages:
            assert 0 <= start < end <= params.duration + 0.2 * DAY

    def test_bursts_are_regional(self):
        params = citysee(n_nodes=50, days=5)
        bursts = [d for d in params.disturbances if d.center is not None]
        assert bursts
        for burst in bursts:
            assert burst.radius > 0
            assert 0 < burst.factor < 1

    def test_deterministic_given_seed(self):
        assert citysee(n_nodes=50, days=5, seed=3) == citysee(n_nodes=50, days=5, seed=3)
        assert citysee(n_nodes=50, days=5, seed=3) != citysee(n_nodes=50, days=5, seed=4)


class TestSmallNetworkPreset:
    def test_shape(self):
        params = small_network(n_nodes=10, minutes=5)
        assert params.n_nodes == 10
        assert params.duration == 300.0

    def test_with_updates_functionally(self):
        params = small_network()
        updated = params.with_(n_nodes=99)
        assert updated.n_nodes == 99
        assert params.n_nodes != 99  # original untouched


class TestScenarioParams:
    def test_defaults_valid(self):
        params = ScenarioParams()
        assert params.gen_sync_window == 30.0

    def test_uniform_phase_mode(self):
        from repro.simnet.network import Network

        params = small_network(n_nodes=10, minutes=5).with_(gen_sync_window=None)
        result = Network(params).run()
        assert len(result.truth.fates) > 0
