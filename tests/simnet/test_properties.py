"""Property-based invariants of the simulator (small random configs)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.event import EventType
from repro.simnet.network import Network, NodeParams
from repro.simnet.scenarios import small_network

configs = st.builds(
    lambda n, seed, minutes, task_p, cap: small_network(
        n_nodes=n, seed=seed, minutes=minutes
    ).with_(node=NodeParams(task_fail_p=task_p, queue_capacity=cap)),
    n=st.integers(min_value=6, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
    minutes=st.floats(min_value=2.0, max_value=8.0),
    task_p=st.floats(min_value=0.0, max_value=0.05),
    cap=st.integers(min_value=2, max_value=16),
)


class TestSimulatorInvariants:
    @given(configs)
    @settings(max_examples=15, deadline=None)
    def test_every_generated_packet_gets_exactly_one_fate(self, params):
        result = Network(params).run()
        truth = result.truth
        assert set(truth.fates) == set(truth.gen_times)

    @given(configs)
    @settings(max_examples=15, deadline=None)
    def test_per_node_logs_time_ordered(self, params):
        result = Network(params).run()
        for log in result.true_logs.values():
            times = [e.time for e in log]
            assert times == sorted(times)

    @given(configs)
    @settings(max_examples=15, deadline=None)
    def test_event_sides_consistent(self, params):
        result = Network(params).run()
        for node, log in result.true_logs.items():
            for e in log:
                if e.etype in ("trans", "ack_recvd", "timeout"):
                    assert e.src == node and e.dst is not None
                elif e.etype in ("recv", "dup", "overflow"):
                    assert e.dst == node and e.src is not None

    @given(configs)
    @settings(max_examples=10, deadline=None)
    def test_delivered_iff_bs_logged(self, params):
        result = Network(params).run()
        bs = result.base_station_node
        bs_packets = {
            e.packet for e in result.true_logs[bs] if e.etype == EventType.RECV.value
        }
        delivered = set(result.truth.delivered_packets())
        assert bs_packets == delivered

    @given(configs)
    @settings(max_examples=10, deadline=None)
    def test_fate_times_after_generation(self, params):
        result = Network(params).run()
        truth = result.truth
        for packet, fate in truth.fates.items():
            assert fate.time >= truth.gen_times[packet]
