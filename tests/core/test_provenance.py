"""Tests for inference provenance and flow explanation."""

import pytest

from repro.core.refill import Refill
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def reconstruct(logs):
    refill = Refill(forwarder_template(with_gen=False))
    return refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})[PKT]


class TestProvenance:
    def test_real_events_marked_logged(self):
        flow = reconstruct({1: [ev("trans", 1, 1, 2)]})
        assert flow.entries[0].provenance == "logged"

    def test_prereq_drive_provenance_names_the_consumer(self):
        # Table II case 1: node 2's events recovered by node 3's recv
        flow = reconstruct({1: [ev("trans", 1, 1, 2)], 3: [ev("recv", 3, 2, 3)]})
        recv = next(e for e in flow.entries if e.inferred and e.event.etype == "recv")
        assert recv.provenance.startswith("prereq:")
        assert "recv at node 3" in recv.provenance

    def test_intra_jump_provenance_names_the_trigger(self):
        # case 3: the [1-2 trans] is skipped over by the observed ack
        flow = reconstruct({1: [ev("ack_recvd", 1, 1, 2), ev("trans", 1, 1, 2)]})
        trans = next(e for e in flow.entries if e.inferred and e.event.etype == "trans")
        assert trans.provenance.startswith("intra:")
        assert "ack recvd" in trans.provenance

    def test_explain_renders_everything(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2)],
            3: [ev("recv", 3, 2, 3), ev("dup", 3, 9, 3)],
        })
        text = flow.explain()
        assert "1-2 trans" in text
        assert "<- prereq:" in text
        lines = text.splitlines()
        assert len(lines) >= len(flow.entries)

    def test_explain_shows_omissions(self):
        flow = reconstruct({3: [ev("dup", 3, 2, 3)]})
        # a lone dup at IDLE is ambiguous -> omitted
        assert "omitted" in flow.explain()
