"""Unit tests for the transition algorithm's mechanics and edge cases."""

import pytest

from repro.core.refill import Refill, RefillOptions
from repro.core.transition_algorithm import (
    PacketReconstructor,
    ReconstructorOptions,
)
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.prerequisites import PrereqRule
from repro.fsm.templates import chain_template, forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None, pkt=PKT):
    return Event.make(etype, node, src=src, dst=dst, packet=pkt)


class TestOmission:
    def test_unprocessable_event_is_omitted_not_crashed(self):
        # a dup at IDLE has ambiguous intra targets -> unprocessable
        reconstructor = PacketReconstructor(forwarder_template(with_gen=False), PKT)
        flow = reconstructor.reconstruct({3: [ev("dup", 3, 2, 3)]})
        assert flow.entries == [] or all(e.event.etype != "dup" for e in flow.entries)
        assert len(flow.omitted) == 1
        assert flow.omitted[0].etype == "dup"

    def test_temporarily_unprocessable_event_waits_for_other_nodes(self):
        # node 3's dup becomes processable once the loop brought the packet
        # there; put the enabling events on another node processed later.
        reconstructor = PacketReconstructor(forwarder_template(with_gen=False), PKT)
        flow = reconstructor.reconstruct({
            2: [ev("recv", 2, 1, 2), ev("dup", 2, 1, 2)],
        })
        types = [e.etype for e in flow.events]
        assert "dup" in types  # processable after recv moved 2 to RECEIVED
        assert flow.omitted == []

    def test_unknown_event_type_is_omitted(self):
        reconstructor = PacketReconstructor(forwarder_template(with_gen=False), PKT)
        flow = reconstructor.reconstruct({1: [ev("martian", 1)]})
        assert [e.etype for e in flow.omitted] == ["martian"]


class TestAblationSwitches:
    def test_intra_disabled_omits_jump_events(self):
        options = ReconstructorOptions(enable_intra=False)
        reconstructor = PacketReconstructor(
            forwarder_template(with_gen=False), PKT, options
        )
        # ack at initial RECEIVED state needs the intra jump
        flow = reconstructor.reconstruct({1: [ev("ack_recvd", 1, 1, 2)]})
        assert flow.entries == []
        assert [e.etype for e in flow.omitted] == ["ack_recvd"]

    def test_inter_disabled_skips_prerequisites(self):
        options = ReconstructorOptions(enable_inter=False)
        reconstructor = PacketReconstructor(
            forwarder_template(with_gen=False), PKT, options
        )
        flow = reconstructor.reconstruct({
            1: [ev("trans", 1, 1, 2)],
            3: [ev("recv", 3, 2, 3)],
        })
        # without inter-node inference the lost [1-2 recv]/[2-3 trans] are
        # not recovered
        assert flow.inferred_events() == []
        assert sorted(e.etype for e in flow.events) == ["recv", "trans"]


class TestDemandCounting:
    def test_one_visit_satisfies_many_consumers(self):
        # Fig. 3(c) shape, reduced: two consumers require node 2 @ s5
        templates = {
            1: chain_template("n1", ["e1"], {"e1": [PrereqRule(2, "s5")]}, first_state=1),
            2: chain_template("n2", ["e3"], first_state=4),
            3: chain_template("n3", ["e5"], {"e5": [PrereqRule(2, "s5")]}, first_state=7),
        }
        reconstructor = PacketReconstructor(lambda n: templates[n])
        flow = reconstructor.reconstruct({
            1: [Event.make("e1", 1)],
            2: [Event.make("e3", 2)],
            3: [Event.make("e5", 3)],
        })
        types = [e.etype for e in flow.events]
        assert types.count("e3") == 1
        assert flow.anomalies == []

    def test_repeated_demand_requires_fresh_visit(self):
        # Two acks from the same consumer demand two arrivals at the peer.
        # The first is a lost [recv]; the second copy arrives while node 2
        # already holds the packet, so the engine infers a duplicate
        # detection [dup] — CTP's actual behavior for a re-received packet.
        reconstructor = PacketReconstructor(forwarder_template(with_gen=False), PKT)
        flow = reconstructor.reconstruct({
            1: [
                ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2),
                ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2),
            ],
        })
        arrivals = [
            e for e in flow.inferred_events()
            if e.node == 2 and e.etype in ("recv", "dup")
        ]
        assert [e.etype for e in arrivals] == ["recv", "dup"]
        assert flow.anomalies == []


class TestDeterminism:
    def test_reconstruction_is_deterministic(self):
        logs = {
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 3)],
            3: [ev("recv", 3, 2, 3)],
        }
        flows = [
            PacketReconstructor(forwarder_template(with_gen=False), PKT).reconstruct(logs)
            for _ in range(3)
        ]
        labels = [f.labels() for f in flows]
        assert labels[0] == labels[1] == labels[2]

    def test_final_states_exposed(self):
        reconstructor = PacketReconstructor(forwarder_template(with_gen=False), PKT)
        flow = reconstructor.reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
        })
        assert flow.final_states[1] == "ACKED"
        assert flow.final_states[2] == "RECEIVED"
        assert "SENT" in flow.visited_states[1]


class TestRecursionGuard:
    def test_deep_cascade_within_limit(self):
        # a 50-node cascade of chained prerequisites resolves fine
        n = 50
        templates = {}
        for i in range(1, n + 1):
            prereqs = {}
            if i < n:
                prereqs = {f"x{i}": [PrereqRule(i + 1, "s1")]}
            templates[i] = chain_template(f"n{i}", [f"x{i}"], prereqs)
        reconstructor = PacketReconstructor(lambda node: templates[node])
        flow = reconstructor.reconstruct({1: [Event.make("x1", 1)]})
        assert len(flow.events) == n
        # deepest prerequisite first
        assert flow.events[0].etype == f"x{n}"
        assert flow.events[-1].etype == "x1"

    def test_depth_limit_reports_anomaly(self):
        n = 30
        templates = {}
        for i in range(1, n + 1):
            prereqs = {}
            if i < n:
                prereqs = {f"x{i}": [PrereqRule(i + 1, "s1")]}
            templates[i] = chain_template(f"n{i}", [f"x{i}"], prereqs)
        options = ReconstructorOptions(max_depth=5)
        reconstructor = PacketReconstructor(lambda node: templates[node], options=options)
        flow = reconstructor.reconstruct({1: [Event.make("x1", 1)]})
        assert any("recursion limit" in a for a in flow.anomalies)


class TestRefillFacade:
    def test_reconstruct_groups_by_packet(self):
        p0, p1 = PacketKey(1, 0), PacketKey(1, 1)
        logs = {
            1: NodeLog(1, [
                ev("trans", 1, 1, 2, p0),
                ev("trans", 1, 1, 2, p1),
            ]),
            2: NodeLog(2, [ev("recv", 2, 1, 2, p0)]),
        }
        refill = Refill(forwarder_template(with_gen=False))
        flows = refill.reconstruct(logs)
        assert set(flows) == {p0, p1}
        assert len(flows[p0].events) == 2
        assert len(flows[p1].events) == 1

    def test_strip_times_option(self):
        logs = {
            1: NodeLog(1, [ev("trans", 1, 1, 2).with_time(5.0)]),
        }
        refill = Refill(
            forwarder_template(with_gen=False), RefillOptions(strip_times=True)
        )
        flow = refill.reconstruct(logs)[PKT]
        assert flow.events[0].time is None

    def test_diagnose_maps_all_packets(self):
        logs = {
            1: NodeLog(1, [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]),
        }
        refill = Refill(forwarder_template(with_gen=False))
        reports = refill.diagnose(refill.reconstruct(logs))
        assert set(reports) == {PKT}
        assert reports[PKT].cause.value == "acked"
