"""Tests for parallel reconstruction (results must match serial exactly)."""

import pytest

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.parallel import ParallelRefill
from repro.core.refill import Refill, RefillOptions
from repro.lognet.collector import collect_logs
from repro.obs import MetricsRegistry, use_registry
from repro.simnet.scenarios import citysee, small_network


@pytest.fixture(scope="module")
def collected_logs():
    params = citysee(n_nodes=60, days=1, seed=23)
    sim = run_simulation(params)
    return collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )


class TestParallelMatchesSerial:
    def test_identical_flows(self, collected_logs):
        serial = Refill().reconstruct(collected_logs)
        parallel = ParallelRefill(workers=2, min_packets=1, batch_size=50).reconstruct(
            collected_logs
        )
        assert set(serial) == set(parallel)
        for packet in serial:
            assert serial[packet].labels() == parallel[packet].labels(), packet
            assert serial[packet].omitted == parallel[packet].omitted

    def test_small_inputs_run_serially(self, collected_logs):
        # below min_packets no pool is spun up (and results still correct)
        refill = ParallelRefill(workers=4, min_packets=10**9)
        flows = refill.reconstruct(collected_logs)
        serial = Refill().reconstruct(collected_logs)
        assert {p: f.labels() for p, f in flows.items()} == {
            p: f.labels() for p, f in serial.items()
        }

    def test_options_forwarded(self, collected_logs):
        options = RefillOptions(enable_inter=False)
        serial = Refill(options=options).reconstruct(collected_logs)
        parallel = ParallelRefill(
            options=options, workers=2, min_packets=1
        ).reconstruct(collected_logs)
        sample = sorted(serial)[:50]
        for packet in sample:
            # options took effect in the workers: flows match the serial
            # inter-disabled run (intra-jump inference may remain)
            assert serial[packet].labels() == parallel[packet].labels()
            assert (
                parallel[packet].inferred_events()
                == serial[packet].inferred_events()
            )

    def test_strip_times_respected_in_workers(self, collected_logs):
        """Regression: the pooled path used to forward only the
        reconstructor options, silently dropping ``strip_times`` — workers
        reconstructed from timestamped events while a serial run did not."""
        options = RefillOptions(strip_times=True)
        parallel = ParallelRefill(
            options=options, workers=2, min_packets=1, batch_size=50
        ).reconstruct(collected_logs)
        for packet, flow in parallel.items():
            assert all(e.time is None for e in flow.events), packet
        serial = Refill(options=options).reconstruct(collected_logs)
        assert {p: f.labels() for p, f in parallel.items()} == {
            p: f.labels() for p, f in serial.items()
        }

    def test_single_worker_degrades_to_serial(self, collected_logs):
        flows = ParallelRefill(workers=1, min_packets=1).reconstruct(collected_logs)
        serial = Refill().reconstruct(collected_logs)
        assert {p: f.labels() for p, f in flows.items()} == {
            p: f.labels() for p, f in serial.items()
        }


class TestWorkerMetricsMerge:
    def test_parallel_counters_equal_serial(self, collected_logs):
        """Worker registries merged back == one serial registry, counter for
        counter — the pool must not lose or double-count work."""
        with use_registry(MetricsRegistry()) as serial_reg:
            Refill().reconstruct(collected_logs)
        with use_registry(MetricsRegistry()) as parallel_reg:
            ParallelRefill(workers=2, min_packets=1, batch_size=50).reconstruct(
                collected_logs
            )
        serial = serial_reg.snapshot().counters
        parallel = parallel_reg.snapshot().counters
        assert serial == parallel
        # and the run actually counted something
        assert serial["refill.packets"] == len(Refill().reconstruct(collected_logs))
        assert serial["refill.events.logged"] > 0

    def test_span_observations_cover_every_packet(self, collected_logs):
        with use_registry(MetricsRegistry()) as reg:
            flows = ParallelRefill(
                workers=2, min_packets=1, batch_size=50
            ).reconstruct(collected_logs)
        per_packet = reg.snapshot().histograms["span.reconstruct.packet"]
        assert per_packet.count == len(flows)
