"""Unit tests for per-packet tracing (paper §II, §V)."""

from repro.core.refill import Refill
from repro.core.tracing import trace_packet
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def reconstruct(logs):
    refill = Refill(forwarder_template(with_gen=False))
    return refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})[PKT]


class TestTracePacket:
    def test_linear_path(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 3), ev("ack_recvd", 2, 2, 3)],
            3: [ev("recv", 3, 2, 3)],
        })
        trace = trace_packet(flow)
        assert trace.path == [1, 2, 3]
        assert not trace.has_loop
        assert trace.retransmissions == 0
        assert trace.final_position == 3
        assert trace.path_string() == "1 -> 2 -> 3"

    def test_path_includes_inferred_hops(self):
        # Table II case 1: node 2's log is lost entirely
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2)],
            3: [ev("recv", 3, 2, 3)],
        })
        trace = trace_packet(flow)
        assert trace.path == [1, 2, 3]
        assert any(h.inferred for h in trace.hops)

    def test_loop_detection(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("recv", 1, 2, 1), ev("trans", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 1), ev("dup", 2, 1, 2)],
        })
        trace = trace_packet(flow)
        assert trace.has_loop
        assert trace.duplicates == 1
        assert trace.path.count(1) == 2

    def test_retransmissions_counted(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("trans", 1, 1, 2), ev("timeout", 1, 1, 2)],
        })
        trace = trace_packet(flow)
        assert trace.retransmissions == 1
        assert trace.final_position == 1

    def test_empty_flow(self):
        refill = Refill(forwarder_template(with_gen=False))
        flow = refill.reconstruct_packet(PKT, {})
        trace = trace_packet(flow)
        assert trace.path == []
        assert trace.final_position is None
        assert trace.path_string() == "(empty)"

    def test_gen_starts_path(self):
        refill = Refill(forwarder_template(with_gen=True))
        pkt = PacketKey(7, 0)
        flow = refill.reconstruct_packet(pkt, {
            7: [
                Event.make("gen", 7, packet=pkt),
                Event.make("trans", 7, src=7, dst=8, packet=pkt),
            ],
            8: [Event.make("recv", 8, src=7, dst=8, packet=pkt)],
        })
        trace = trace_packet(flow)
        assert trace.path == [7, 8]
