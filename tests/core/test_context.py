"""Direct unit tests for the per-packet neighbour context."""

from repro.core.context import PacketContext
from repro.events.event import Event
from repro.events.packet import PacketKey

PKT = PacketKey(1, 0)


def ev(etype, node, src, dst):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


class TestPacketContext:
    def test_note_learns_both_directions(self):
        ctx = PacketContext()
        ctx.note(ev("trans", 1, 1, 2))
        assert ctx.downstream(1) == 2
        assert ctx.upstream(2) == 1
        assert ctx.upstream(1) is None
        assert ctx.downstream(9) is None

    def test_pairless_events_ignored(self):
        ctx = PacketContext()
        ctx.note(Event.make("gen", 5, packet=PKT))
        assert ctx.upstream(5) is None and ctx.downstream(5) is None

    def test_processed_events_overwrite(self):
        ctx = PacketContext()
        ctx.note(ev("trans", 2, 2, 3))
        ctx.note(ev("trans", 2, 2, 7))  # re-route: later processed wins
        assert ctx.downstream(2) == 7

    def test_preseed_does_not_overwrite(self):
        ctx = PacketContext()
        ctx.note(ev("trans", 2, 2, 3))
        ctx.preseed([ev("trans", 2, 2, 7)])
        assert ctx.downstream(2) == 3

    def test_preseed_first_seen_wins(self):
        ctx = PacketContext()
        ctx.preseed([ev("trans", 2, 2, 3), ev("trans", 2, 2, 7)])
        assert ctx.downstream(2) == 3

    def test_inferred_note_defers_to_real(self):
        ctx = PacketContext()
        ctx.note(ev("recv", 3, 2, 3))             # real: overwrite=True
        ctx.note(ev("recv", 3, 9, 3), overwrite=False)  # inferred guess
        assert ctx.upstream(3) == 2
