"""Direct unit tests for the engine instance (selection, visits, paths)."""

import pytest

from repro.core.context import PacketContext
from repro.core.engine import EngineInstance
from repro.events.event import Event
from repro.events.packet import PacketKey
from repro.fsm.templates import (
    ACKED,
    DROPPED_OVERFLOW,
    IDLE,
    RECEIVED,
    SENT,
    forwarder_template,
)

PKT = PacketKey(1, 0)


@pytest.fixture()
def engine():
    # node 2: a forwarding node (not the origin)
    return EngineInstance(forwarder_template(with_gen=False), 2, PKT)


@pytest.fixture()
def ctx():
    ctx = PacketContext()
    ctx.note(Event.make("trans", 1, src=1, dst=2, packet=PKT))
    ctx.note(Event.make("trans", 2, src=2, dst=3, packet=PKT))
    return ctx


class TestSelection:
    def test_normal_preferred(self, engine):
        selection = engine.select("recv")
        assert selection.kind == "normal"
        assert selection.target == RECEIVED

    def test_intra_fallback(self, engine):
        selection = engine.select("ack_recvd")  # no normal edge at IDLE
        assert selection.kind == "intra"
        assert selection.target == ACKED

    def test_unprocessable_none(self, engine):
        assert engine.select("dup") is None  # ambiguous at IDLE
        assert engine.select("martian") is None


class TestVisits:
    def test_initial_state_counts(self, engine):
        assert engine.visit_count[IDLE] == 1
        assert engine.visit_entry(IDLE, 1) is None
        assert engine.visits_of((IDLE, SENT)) == 1

    def test_fire_records_everything(self, engine):
        engine.fire(RECEIVED, entry=4)
        engine.fire(SENT, entry=7)
        engine.fire(SENT, entry=9)
        assert engine.state == SENT
        assert engine.visit_count[SENT] == 2
        assert engine.visit_entry(SENT, 1) == 7
        assert engine.visit_entry(SENT, 2) == 9
        assert engine.trajectory == [IDLE, RECEIVED, SENT, SENT]
        assert engine.last_entry == 9

    def test_visit_entry_of_state_sets(self, engine):
        engine.fire(RECEIVED, entry=1)
        engine.fire(SENT, entry=2)
        engine.fire(ACKED, entry=3)
        engine.fire(RECEIVED, entry=4)
        assert engine.visits_of((RECEIVED, DROPPED_OVERFLOW)) == 2
        assert engine.visit_entry_of((RECEIVED, DROPPED_OVERFLOW), 1) == 1
        assert engine.visit_entry_of((RECEIVED, DROPPED_OVERFLOW), 2) == 4
        with pytest.raises(IndexError):
            engine.visit_entry_of((RECEIVED,), 5)

    def test_visit_entry_bounds(self, engine):
        with pytest.raises(IndexError):
            engine.visit_entry(SENT, 1)


class TestInferencePaths:
    def test_path_to_forward_state(self, engine, ctx):
        path = engine.inference_path(SENT, ctx)
        assert [t.event for t in path] == ["recv", "trans"]

    def test_positive_cycle_when_at_target(self, engine, ctx):
        engine.fire(RECEIVED, entry=0)
        path = engine.inference_path(RECEIVED, ctx)
        # fresh visit of RECEIVED from RECEIVED: the dup self-loop
        assert [t.event for t in path] == ["dup"]

    def test_distance(self, engine, ctx):
        assert engine.distance_to(SENT, ctx) == 2
        assert engine.distance_to(IDLE, ctx) is None  # nothing re-enters IDLE

    def test_nearest_of(self, engine, ctx):
        state, distance = engine.nearest_of((RECEIVED, DROPPED_OVERFLOW), ctx)
        assert distance == 1
        assert state in (RECEIVED, DROPPED_OVERFLOW)
        assert engine.nearest_of((IDLE,), ctx) == (None, None)

    def test_intra_inference_path(self, engine, ctx):
        # ack at IDLE: the lost prefix is recv + trans (the final ack edge
        # is the observed event)
        path = engine.intra_inference_path("ack_recvd", ACKED, ctx)
        assert [t.event for t in path] == ["recv", "trans"]

    def test_origin_edge_filter_blocks_recv(self, ctx):
        # the origin (with_gen) can only acquire via gen on inference paths
        engine = EngineInstance(forwarder_template(with_gen=True), 1, PKT)
        empty = PacketContext()
        path = engine.inference_path(RECEIVED, empty)
        assert [t.event for t in path] == ["gen"]
