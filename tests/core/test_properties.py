"""Property-based tests for the transition algorithm's invariants.

Strategy: generate a *true* multi-hop packet history on a chain (with
optional retransmission and loop episodes), drop an arbitrary subset of its
events, reconstruct, and check the invariants that must hold for any
subset:

- conservation: every surviving input event is either in the flow (as a
  real entry) or omitted — never duplicated, never invented;
- per-node order: the real entries of each node appear in log order;
- soundness: inferred events only ever have signatures the complete history
  contained (REFILL does not hallucinate event kinds);
- happens-before is a strict partial order consistent with the linearization;
- determinism.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refill import Refill
from repro.core.transition_algorithm import PacketReconstructor
from repro.events.event import Event, EventType
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)
TEMPLATE = forwarder_template(with_gen=False)


def chain_history(n_hops: int, ack_loss_hop: int | None) -> list[Event]:
    """True event sequence of a packet traversing nodes 1..n_hops+1."""
    events: list[Event] = []
    for i in range(1, n_hops + 1):
        a, b = i, i + 1
        events.append(Event.make(EventType.TRANS, a, src=a, dst=b, packet=PKT))
        events.append(Event.make(EventType.RECV, b, src=a, dst=b, packet=PKT))
        if ack_loss_hop == i:
            events.append(Event.make(EventType.TIMEOUT, a, src=a, dst=b, packet=PKT))
        else:
            events.append(Event.make(EventType.ACK, a, src=a, dst=b, packet=PKT))
    return events


@st.composite
def lossy_scenarios(draw):
    n_hops = draw(st.integers(min_value=1, max_value=5))
    ack_loss = draw(st.none() | st.integers(min_value=1, max_value=n_hops))
    history = chain_history(n_hops, ack_loss)
    keep = draw(st.lists(st.booleans(), min_size=len(history), max_size=len(history)))
    surviving = [e for e, k in zip(history, keep) if k]
    return history, surviving


def to_queues(events):
    queues: dict[int, list[Event]] = {}
    for event in events:
        queues.setdefault(event.node, []).append(event)
    return queues


def reconstruct(surviving):
    return PacketReconstructor(TEMPLATE, PKT).reconstruct(to_queues(surviving))


class TestReconstructionInvariants:
    @given(lossy_scenarios())
    @settings(max_examples=120)
    def test_conservation(self, scenario):
        _, surviving = scenario
        flow = reconstruct(surviving)
        assert len(flow.real_events()) + len(flow.omitted) == len(surviving)
        # real entries are exactly the non-omitted survivors
        assert Counter(flow.real_events()) + Counter(flow.omitted) == Counter(surviving)

    @given(lossy_scenarios())
    @settings(max_examples=120)
    def test_per_node_log_order_preserved(self, scenario):
        _, surviving = scenario
        flow = reconstruct(surviving)
        omitted = Counter(flow.omitted)
        for node, queue in to_queues(surviving).items():
            expected = [e for e in queue if not omitted.get(e)]
            got = [e for e in flow.real_events() if e.node == node]
            # multiset-level: per-node order of non-omitted events preserved
            kept = []
            pending = Counter(got)
            for e in queue:
                if pending.get(e, 0) > 0:
                    kept.append(e)
                    pending[e] -= 1
            assert got == kept

    @given(lossy_scenarios())
    @settings(max_examples=120)
    def test_inferred_signatures_are_sound(self, scenario):
        history, surviving = scenario
        flow = reconstruct(surviving)
        true_signatures = {(e.etype, e.node) for e in history}
        # engines may additionally infer a dup arrival for a re-received
        # copy; everything else must exist in the complete history
        for event in flow.inferred_events():
            assert (event.etype, event.node) in true_signatures or event.etype == "dup"

    @given(lossy_scenarios())
    @settings(max_examples=120)
    def test_happens_before_strict_partial_order(self, scenario):
        _, surviving = scenario
        flow = reconstruct(surviving)
        n = len(flow.entries)
        for i in range(n):
            assert not flow.happens_before(i, i)
            for j in range(i + 1, n):
                # consistent with the linearization: no backward edges
                assert not flow.happens_before(j, i)

    @given(lossy_scenarios())
    @settings(max_examples=60)
    def test_deterministic(self, scenario):
        _, surviving = scenario
        a = reconstruct(surviving)
        b = reconstruct(surviving)
        assert a.labels() == b.labels()
        assert a.hb_edges == b.hb_edges
        assert a.omitted == b.omitted

    @given(lossy_scenarios())
    @settings(max_examples=120)
    def test_classification_total(self, scenario):
        from repro.core.diagnosis import classify_flow

        _, surviving = scenario
        flow = reconstruct(surviving)
        report = classify_flow(flow, delivery_node=7)
        assert report.cause is not None
        if report.position is not None and flow.entries:
            known_nodes = {e.node for e in flow.events}
            known_nodes |= {e.src for e in flow.events if e.src is not None}
            known_nodes |= {e.dst for e in flow.events if e.dst is not None}
            assert report.position in known_nodes

    @given(lossy_scenarios())
    @settings(max_examples=60)
    def test_full_history_reconstructs_without_inference(self, scenario):
        history, _ = scenario
        flow = reconstruct(history)
        assert flow.inferred_events() == []
        assert flow.omitted == []
        assert len(flow.entries) == len(history)
