"""Unit tests for flow-level queries (per-packet delay, retx, loops)."""

import pytest

from repro.core.queries import (
    estimate_delay,
    network_stats,
    packet_stats,
    retransmission_hotspots,
)
from repro.core.refill import Refill
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None, t=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT, time=t)


def reconstruct(logs):
    refill = Refill(forwarder_template(with_gen=False))
    return refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})


class TestEstimateDelay:
    def test_sums_per_node_residence(self):
        # node 1 holds the packet 0->2s (its clock), node 2 holds 100->103s
        # (another clock, huge offset): delay = 2 + 3, offsets cancel
        flows = reconstruct({
            1: [ev("trans", 1, 1, 2, t=0.0), ev("ack_recvd", 1, 1, 2, t=2.0)],
            2: [ev("recv", 2, 1, 2, t=100.0), ev("trans", 2, 2, 3, t=103.0)],
        })
        assert estimate_delay(flows[PKT]) == pytest.approx(5.0)

    def test_none_without_timestamps(self):
        flows = reconstruct({1: [ev("trans", 1, 1, 2)]})
        assert estimate_delay(flows[PKT]) is None

    def test_single_timestamp_counts_zero_residence(self):
        flows = reconstruct({1: [ev("trans", 1, 1, 2, t=7.0)]})
        assert estimate_delay(flows[PKT]) == 0.0


class TestPacketStats:
    def test_basic_stats(self):
        flows = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 3)],
            3: [ev("recv", 3, 2, 3)],
        })
        stats = packet_stats(flows[PKT])
        assert stats.hop_count == 2
        assert stats.retransmissions == 0
        assert not stats.has_loop
        assert stats.inferred_fraction == 0.0

    def test_inferred_fraction(self):
        flows = reconstruct({1: [ev("trans", 1, 1, 2)], 3: [ev("recv", 3, 2, 3)]})
        stats = packet_stats(flows[PKT])
        # flow: trans, [recv], [trans], recv -> 2/4 inferred
        assert stats.inferred_fraction == pytest.approx(0.5)

    def test_loop_and_duplicates(self):
        flows = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("recv", 1, 2, 1), ev("trans", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 1), ev("dup", 2, 1, 2)],
        })
        stats = packet_stats(flows[PKT])
        assert stats.has_loop
        assert stats.duplicates == 1


class TestNetworkStats:
    def make_flows(self):
        p0, p1 = PacketKey(1, 0), PacketKey(1, 1)
        refill = Refill(forwarder_template(with_gen=False))
        logs = {
            1: NodeLog(1, [
                Event.make("trans", 1, src=1, dst=9, packet=p0),
                Event.make("trans", 1, src=1, dst=9, packet=p1),
            ]),
            9: NodeLog(9, [Event.make("recv", 9, src=1, dst=9, packet=p0)]),
        }
        return refill.reconstruct(logs)

    def test_aggregates(self):
        flows = self.make_flows()
        stats = network_stats(flows, delivery_node=9)
        assert stats.packets == 2
        assert stats.delivered == 1
        assert stats.lost == 1
        assert stats.delivery_ratio() == pytest.approx(0.5)
        assert stats.hop_histogram[1] == 1  # delivered packet: 1 hop
        assert stats.node_load[1] == 2

    def test_empty(self):
        stats = network_stats({})
        assert stats.packets == 0
        assert stats.delivery_ratio() == 0.0
        assert stats.mean_delay is None


class TestRetransmissionHotspots:
    def test_counts_repeat_transmissions(self):
        refill = Refill(forwarder_template(with_gen=False))
        logs = {
            1: NodeLog(1, [
                ev("trans", 1, 1, 2),
                ev("trans", 1, 1, 2),
                ev("trans", 1, 1, 2),
                ev("timeout", 1, 1, 2),
            ]),
        }
        flows = refill.reconstruct(logs)
        hotspots = retransmission_hotspots(flows)
        assert hotspots[0] == ((1, 2), 2)

    def test_no_retx_empty(self):
        flows = reconstruct({1: [ev("trans", 1, 1, 2)]})
        assert retransmission_hotspots(flows) == []
