"""Unit tests for EventFlow and its happens-before machinery."""

import pytest

from repro.core.event_flow import EventFlow
from repro.events.event import Event
from repro.events.packet import PacketKey


def ev(etype, node=1, **kw):
    return Event.make(etype, node, **kw)


class TestAppendAndAccessors:
    def test_append_returns_indices(self):
        flow = EventFlow(PacketKey(1, 0))
        assert flow.append(ev("a"), inferred=False) == 0
        assert flow.append(ev("b"), inferred=True, after=[0]) == 1
        assert len(flow) == 2

    def test_real_and_inferred_partition(self):
        flow = EventFlow()
        flow.append(ev("a"), inferred=False)
        flow.append(ev("b"), inferred=True)
        flow.append(ev("c"), inferred=False)
        assert [e.etype for e in flow.real_events()] == ["a", "c"]
        assert [e.etype for e in flow.inferred_events()] == ["b"]

    def test_labels_bracket_inferred(self):
        flow = EventFlow()
        flow.append(Event.make("trans", 1, src=1, dst=2), inferred=False)
        flow.append(Event.make("recv", 2, src=1, dst=2), inferred=True)
        assert flow.labels() == ["1-2 trans", "[1-2 recv]"]
        assert flow.format() == "1-2 trans, [1-2 recv]"

    def test_last_event_and_empty(self):
        flow = EventFlow()
        assert flow.last_event() is None
        flow.append(ev("a"), inferred=False)
        assert flow.last_event().etype == "a"

    def test_nodes_and_find(self):
        flow = EventFlow()
        flow.append(ev("a", 1), inferred=False)
        flow.append(ev("a", 2), inferred=False)
        flow.append(ev("b", 1), inferred=False)
        assert flow.nodes() == {1, 2}
        assert flow.find("a") == [0, 1]
        assert flow.find("a", node=2) == [1]

    def test_index_of(self):
        flow = EventFlow()
        e = ev("a", 3)
        flow.append(e, inferred=False)
        assert flow.index_of(e) == 0
        with pytest.raises(ValueError):
            flow.index_of(ev("zzz", 9))

    def test_invalid_after_rejected(self):
        flow = EventFlow()
        with pytest.raises(ValueError):
            flow.append(ev("a"), inferred=False, after=[0])  # self/future ref


class TestHappensBefore:
    def make_diamond(self):
        # 0 -> 1 -> 3, 0 -> 2 -> 3 ; 1 and 2 unordered
        flow = EventFlow()
        for name in "abcd":
            flow.append(ev(name), inferred=False)
        flow.add_order(0, 1)
        flow.add_order(0, 2)
        flow.add_order(1, 3)
        flow.add_order(2, 3)
        return flow

    def test_transitive_closure(self):
        flow = self.make_diamond()
        assert flow.happens_before(0, 3)
        assert flow.happens_before(0, 1)
        assert not flow.happens_before(3, 0)
        assert not flow.happens_before(0, 0)

    def test_undetermined_pairs(self):
        flow = self.make_diamond()
        assert not flow.order_determined(1, 2)
        assert flow.order_determined(0, 3)

    def test_maximal_entries(self):
        flow = self.make_diamond()
        assert flow.maximal_entries() == [3]
        # an isolated entry is maximal too
        flow.append(ev("e"), inferred=False)
        assert flow.maximal_entries() == [3, 4]

    def test_add_order_validation(self):
        flow = EventFlow()
        flow.append(ev("a"), inferred=False)
        with pytest.raises(ValueError):
            flow.add_order(0, 0)
        with pytest.raises(ValueError):
            flow.add_order(0, 5)

    def test_visited_queries(self):
        flow = EventFlow()
        flow.visited_states[3] = frozenset({"IDLE", "RECEIVED"})
        assert flow.visited(3, "RECEIVED")
        assert not flow.visited(3, "SENT")
        assert not flow.visited(9, "IDLE")
