"""Tests for the unified reconstruction session (the spine every door uses)."""

import pytest

from repro.core.backends import IncrementalBackend, SerialBackend, make_backend
from repro.core.refill import Refill
from repro.core.session import ReconstructionSession, RefillOptions, SessionResult
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template
from repro.obs import MetricsRegistry, use_registry

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None, pkt=PKT, time=None):
    return Event.make(etype, node, src=src, dst=dst, packet=pkt, time=time)


@pytest.fixture()
def logs():
    return {
        1: NodeLog(1, [ev("trans", 1, 1, 2, time=0.5), ev("ack_recvd", 1, 1, 2, time=0.9)]),
        2: NodeLog(2, [ev("recv", 2, 1, 2, time=0.7), ev("trans", 2, 2, 99, time=0.8)]),
        99: NodeLog(99, [ev("recv", 99, 2, 99, time=1.1)]),
    }


class TestOneShot:
    def test_matches_refill_shim(self, logs):
        session = ReconstructionSession(forwarder_template(with_gen=False))
        flows = session.reconstruct(logs)
        legacy = Refill(forwarder_template(with_gen=False)).reconstruct(logs)
        assert {p: f.labels() for p, f in flows.items()} == {
            p: f.labels() for p, f in legacy.items()
        }

    def test_run_bundles_flows_and_reports(self, logs):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), delivery_node=99
        )
        result = session.run(logs)
        assert isinstance(result, SessionResult)
        assert set(result.flows) == set(result.reports) == {PKT}
        assert not result.reports[PKT].lost

    def test_backend_reusable_across_runs(self, logs):
        session = ReconstructionSession(forwarder_template(with_gen=False))
        first = session.reconstruct(logs)
        second = session.reconstruct(logs)
        assert {p: f.labels() for p, f in first.items()} == {
            p: f.labels() for p, f in second.items()
        }

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            ReconstructionSession(batch_size=0)

    def test_string_backends_resolve(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("incremental").name == "incremental"
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")


class TestNormalization:
    def test_strip_times_applied_before_backend(self, logs):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), RefillOptions(strip_times=True)
        )
        flows = session.reconstruct(logs)
        for flow in flows.values():
            assert all(e.time is None for e in flow.events)

    def test_strip_times_in_single_group_door(self):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), RefillOptions(strip_times=True)
        )
        flow = session.reconstruct_group(
            PKT, {1: [ev("trans", 1, 1, 2, time=3.0)]}
        )
        assert all(e.time is None for e in flow.events)

    def test_times_kept_by_default(self, logs):
        session = ReconstructionSession(forwarder_template(with_gen=False))
        flows = session.reconstruct(logs)
        logged = [e for f in flows.values() for e in f.real_events()]
        assert any(e.time is not None for e in logged)


class TestDiagnoseInstrumented:
    def test_span_and_counter_recorded(self, logs):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), delivery_node=99
        )
        with use_registry(MetricsRegistry()) as registry:
            flows = session.reconstruct(logs)
            reports = session.diagnose(flows)
        snapshot = registry.snapshot()
        assert snapshot.counters["diagnose.packets"] == len(reports) == len(flows)
        assert snapshot.histograms["span.diagnose"].count == 1

    def test_delivery_node_override(self, logs):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), delivery_node=99
        )
        flows = session.reconstruct(logs)
        assert not session.diagnose(flows)[PKT].lost
        assert session.diagnose(flows, delivery_node=None)[PKT].lost


class TestStreamingIngest:
    def test_requires_accumulating_backend(self):
        session = ReconstructionSession(
            forwarder_template(with_gen=False), backend=SerialBackend()
        )
        with pytest.raises(TypeError, match="accumulating"):
            session.ingest({1: [ev("trans", 1, 1, 2)]})

    def test_ingest_refresh_cycle(self):
        session = ReconstructionSession(
            forwarder_template(with_gen=False),
            backend=IncrementalBackend(),
            delivery_node=99,
        )
        dirtied = session.ingest({1: [ev("trans", 1, 1, 99)]})
        assert dirtied == {PKT}
        assert session.pending == 1
        assert session.batches_ingested == 1
        assert session.reports()[PKT].lost  # auto-refresh
        assert session.pending == 0
        session.ingest({99: [ev("recv", 99, 1, 99)]})
        assert not session.reports()[PKT].lost
        assert session.packets() == [PKT]

    def test_stream_mode_matches_full_grouping(self, logs):
        full = ReconstructionSession(forwarder_template(with_gen=False)).reconstruct(
            logs
        )
        streamed = ReconstructionSession(
            forwarder_template(with_gen=False), stream=True, batch_size=1
        ).reconstruct(logs)
        assert {p: f.labels() for p, f in full.items()} == {
            p: f.labels() for p, f in streamed.items()
        }


class TestPreflight:
    def test_preflight_passes_on_default_template(self):
        ReconstructionSession().preflight()

    def test_preflight_raises_on_broken_template(self):
        from repro.check.runner import PreflightError
        from repro.fsm.graph import TransitionGraph
        from repro.fsm.prerequisites import Peer, PrereqRule
        from repro.fsm.templates import FsmTemplate

        broken = FsmTemplate(
            "broken",
            TransitionGraph(["a", "b"], [("a", "b", "e")], "a"),
            prereqs={"e": [PrereqRule(Peer.SRC, "GHOST")]},
        )
        with pytest.raises(PreflightError):
            ReconstructionSession(broken).preflight()
