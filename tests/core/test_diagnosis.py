"""Unit tests for loss-cause classification (paper §V-B)."""

import pytest

from repro.core.diagnosis import LossCause, classify_flow
from repro.core.refill import Refill
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)
BS = 100  # base-station pseudo-node


def ev(etype, node, src=None, dst=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def reconstruct(logs):
    refill = Refill(forwarder_template(with_gen=False))
    return refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})[PKT]


class TestCauses:
    def test_delivered_when_bs_received(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, BS)],
            BS: [ev("recv", BS, 2, BS)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.DELIVERED
        assert report.position == BS
        assert not report.lost

    def test_received_loss_when_recv_is_last(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.RECEIVED_LOSS
        assert report.position == 2

    def test_received_loss_when_recv_real_and_acked(self):
        # receiver logged the recv and the sender got the ack: the packet
        # demonstrably entered node 2 and died there.
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.RECEIVED_LOSS
        assert report.position == 2

    def test_acked_loss_when_recv_only_inferred(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.ACKED_LOSS
        assert report.position == 2

    def test_timeout_loss(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("timeout", 1, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.TIMEOUT_LOSS
        assert report.position == 1

    def test_overflow_loss(self):
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2)],
            2: [ev("overflow", 2, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.OVERFLOW_LOSS
        assert report.position == 2

    def test_dup_loss(self):
        # the packet loops 1 -> 2 -> 1 -> 2 and the second copy is discarded
        flow = reconstruct({
            1: [ev("trans", 1, 1, 2), ev("recv", 1, 2, 1), ev("trans", 1, 1, 2)],
            2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 1), ev("dup", 2, 1, 2)],
        })
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.DUP_LOSS
        assert report.position == 2

    def test_unknown_for_dangling_trans(self):
        flow = reconstruct({1: [ev("trans", 1, 1, 2)]})
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.UNKNOWN
        assert report.position == 1

    def test_empty_flow_is_unknown(self):
        refill = Refill(forwarder_template(with_gen=False))
        flow = refill.reconstruct_packet(PKT, {})
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.UNKNOWN
        assert report.position is None

    def test_gen_last_maps_to_received_loss_at_origin(self):
        refill = Refill(forwarder_template(with_gen=True))
        pkt = PacketKey(5, 3)
        flow = refill.reconstruct_packet(
            pkt, {5: [Event.make("gen", 5, packet=pkt)]}
        )
        report = classify_flow(flow, delivery_node=BS)
        assert report.cause is LossCause.RECEIVED_LOSS
        assert report.position == 5


class TestAnchorSelection:
    def test_possession_beats_concurrent_ack(self):
        # Table II case 4 shape: a dangling trans and a concurrent ack are
        # both on the frontier; the trans wins.
        from tests.integration.test_table2_cases import TestCase4

        logs = {n: NodeLog(n, evs) for n, evs in TestCase4.LOGS.items()}
        refill = Refill(forwarder_template(with_gen=False))
        flow = refill.reconstruct(logs)[PKT]
        report = classify_flow(flow, delivery_node=BS)
        assert report.anchor.etype == "trans"
        assert report.position == 2

    def test_report_lost_property(self):
        flow = reconstruct({1: [ev("trans", 1, 1, 2)]})
        assert classify_flow(flow).lost
