"""Late truncation: a node's log shrinks or disappears between batches.

Collection is not append-only in the field — a node can crash and lose its
log tail, or vanish entirely, *after* earlier rounds already delivered a
prefix.  The incremental backend's contract under that shape:

- flows equal a from-scratch serial run over the union of evidence that
  was actually delivered (the withheld tail simply never existed);
- the dirty set stays exact — packets whose evidence saw no new events are
  neither re-reconstructed nor re-reported by ``refresh``.
"""

import pytest

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.backends import IncrementalBackend, SerialBackend
from repro.core.session import ReconstructionSession
from repro.events.log import NodeLog
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee

from tests.core.test_backend_equivalence import canonical


@pytest.fixture(scope="module")
def corpus():
    params = citysee(n_nodes=16, days=1, seed=31)
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=8,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    return logs, sim.base_station_node


def _split(logs, truncated, vanished):
    """Two collection rounds: round 1 delivers a prefix of every log;
    round 2 delivers the rest — except the ``truncated`` node's tail is
    lost and the ``vanished`` node is gone entirely."""
    first, second = {}, {}
    for node, log in logs.items():
        events = list(log)
        cut = (2 * len(events)) // 3
        first[node] = events[:cut]
        if node == truncated or node == vanished:
            continue  # the tail never arrives
        second[node] = events[cut:]
    return first, second


def _delivered_union(first, second):
    union = {}
    for batch in (first, second):
        for node, events in batch.items():
            union.setdefault(node, []).extend(events)
    return {node: NodeLog(node, events) for node, events in union.items()}


def test_truncated_and_vanished_nodes_match_from_scratch_serial(corpus):
    logs, bs = corpus
    nodes = sorted(n for n in logs if n != bs and len(logs[n]) >= 3)
    truncated, vanished = nodes[0], nodes[1]
    first, second = _split(logs, truncated, vanished)

    inc = ReconstructionSession(backend=IncrementalBackend(), delivery_node=bs)
    inc.ingest(first)
    inc.refresh()
    inc.ingest(second)
    inc_flows = inc.flows()
    inc_reports = inc.reports()

    serial = ReconstructionSession(backend=SerialBackend(), delivery_node=bs)
    flows = serial.reconstruct(_delivered_union(first, second))
    assert canonical(inc_flows) == canonical(flows)
    assert inc_reports == serial.diagnose(flows)


def test_dirty_set_is_exactly_the_second_round_evidence(corpus):
    logs, bs = corpus
    nodes = sorted(n for n in logs if n != bs and len(logs[n]) >= 3)
    truncated, vanished = nodes[0], nodes[1]
    first, second = _split(logs, truncated, vanished)

    session = ReconstructionSession(backend=IncrementalBackend(), delivery_node=bs)
    session.ingest(first)
    refreshed_first = session.refresh()

    touched = session.ingest(second)
    expected = {
        e.packet
        for events in second.values()
        for e in events
        if e.packet is not None
    }
    assert touched == expected
    assert session.backend.dirty == expected

    # the withheld tails dirty nothing: packets whose only remaining
    # evidence sat in the lost suffix of the truncated/vanished logs are
    # not re-reconstructed...
    refreshed_second = session.refresh()
    assert refreshed_second == expected
    # ...and a refresh with no new evidence is a no-op
    assert session.refresh() == set()

    # every packet ever evidenced (round 1 or 2) still has a flow
    evidenced = {
        e.packet
        for batch in (first, second)
        for events in batch.values()
        for e in events
        if e.packet is not None
    }
    assert set(session.flows()) == evidenced
    assert refreshed_first == {
        e.packet
        for events in first.values()
        for e in events
        if e.packet is not None
    }
