"""Tests for incremental (batch-by-batch) reconstruction."""

import pytest

from repro.core.incremental import IncrementalRefill
from repro.core.refill import Refill
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None, pkt=PKT):
    return Event.make(etype, node, src=src, dst=dst, packet=pkt)


@pytest.fixture()
def engine():
    return IncrementalRefill(forwarder_template(with_gen=False), delivery_node=99)


class TestIngestAndRefresh:
    def test_dirty_tracking(self, engine):
        dirtied = engine.ingest({1: [ev("trans", 1, 1, 2)]})
        assert dirtied == {PKT}
        assert engine.pending == 1
        engine.refresh()
        assert engine.pending == 0

    def test_flow_evolves_with_evidence(self, engine):
        engine.ingest({1: [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]})
        first = engine.flow(PKT)
        assert first.labels() == ["1-2 trans", "[1-2 recv]", "1-2 ack recvd"]
        report = engine.reports()[PKT]
        assert report.cause.value == "acked"
        # the receiver's log arrives in the next collection round
        engine.ingest({2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 99)]})
        second = engine.flow(PKT)
        assert "[1-2 recv]" not in second.labels()
        assert "2-99 trans" in second.labels()

    def test_delivery_flips_diagnosis(self, engine):
        engine.ingest({1: [ev("trans", 1, 1, 99)]})
        assert engine.reports()[PKT].lost
        engine.ingest({99: [ev("recv", 99, 1, 99)]})
        assert not engine.reports()[PKT].lost

    def test_only_dirty_packets_recomputed(self, engine):
        other = PacketKey(5, 1)
        engine.ingest({1: [ev("trans", 1, 1, 2)]})
        engine.ingest({5: [ev("trans", 5, 5, 6, pkt=other)]})
        engine.refresh()
        flow_before = engine.flow(PKT)
        engine.ingest({5: [ev("ack_recvd", 5, 5, 6, pkt=other)]})
        refreshed = engine.refresh()
        assert refreshed == {other}
        assert engine.flow(PKT) is flow_before  # untouched object

    def test_packetless_events_ignored(self, engine):
        dirtied = engine.ingest({1: [Event.make("beacon", 1)]})
        assert dirtied == set()


class TestMatchesBatchReconstruction:
    def test_final_state_equals_one_shot(self, engine):
        batches = [
            {1: [ev("trans", 1, 1, 2)]},
            {2: [ev("recv", 2, 1, 2), ev("trans", 2, 2, 3)]},
            {1: [ev("ack_recvd", 1, 1, 2)]},
            {3: [ev("recv", 3, 2, 3)]},
        ]
        all_events: dict[int, list] = {}
        for batch in batches:
            engine.ingest(batch)
            for node, events in batch.items():
                all_events.setdefault(node, []).extend(events)
        incremental = engine.flows()[PKT]

        refill = Refill(forwarder_template(with_gen=False))
        logs = {n: NodeLog(n, evs) for n, evs in all_events.items()}
        oneshot = refill.reconstruct(logs)[PKT]
        assert incremental.labels() == oneshot.labels()

    def test_node_log_batches_accepted(self, engine):
        log = NodeLog(1, [ev("trans", 1, 1, 2)])
        engine.ingest({1: log})
        assert engine.packets() == [PKT]
