"""Backend equivalence: results are execution-strategy-independent.

REFILL's per-packet independence is the paper's licence to parallelize; the
session layer's contract is that serial, process-pool, and incremental
execution produce *byte-identical* flows, identical diagnoses, and identical
merged counter totals — for every options configuration, including
``strip_times`` and the ablation switches.
"""

import json
import random

import pytest

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.core.backends import (
    IncrementalBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.core.serialize import flow_to_dict
from repro.core.session import ReconstructionSession, RefillOptions
from repro.events.log import NodeLog
from repro.lognet.collector import collect_logs
from repro.obs import MetricsRegistry, use_registry
from repro.simnet.scenarios import citysee

CONFIGS = {
    "default": RefillOptions(),
    "strip_times": RefillOptions(strip_times=True),
    "no_inter": RefillOptions(enable_inter=False),
    "no_intra": RefillOptions(enable_intra=False),
}


@pytest.fixture(scope="module")
def corpus():
    params = citysee(n_nodes=60, days=1, seed=23)
    sim = run_simulation(params)
    logs = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=5,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    return logs, sim.base_station_node


def canonical(flows):
    """Byte-exact fingerprint of a reconstruction result."""
    return {
        str(p): json.dumps(flow_to_dict(f), sort_keys=True)
        for p, f in flows.items()
    }


def run_backend(logs, delivery_node, options, backend, *, ingest_batches=None):
    """One full session run under its own registry.

    ``ingest_batches`` switches to the streaming-ingest door (accumulating
    backends): evidence arrives in that many per-node ordered segments.
    """
    session = ReconstructionSession(
        options=options, backend=backend, delivery_node=delivery_node
    )
    with use_registry(MetricsRegistry()) as registry:
        if ingest_batches is None:
            flows = session.reconstruct(logs)
            reports = session.diagnose(flows)
        else:
            for batch in ingest_batches:
                session.ingest(batch)
            flows = session.flows()
            reports = session.reports()
    return flows, reports, registry.snapshot()


def shuffled_segments(logs, n_batches, seed):
    """Split each node's log into in-order segments scattered across
    ``n_batches`` batches — arbitrary cross-node interleaving, per-node
    order preserved (the collection-round invariant)."""
    rng = random.Random(seed)
    batches = [dict() for _ in range(n_batches)]
    for node, log in logs.items():
        events = list(log)
        n_cuts = rng.randint(1, min(n_batches, max(1, len(events))))
        cuts = sorted(rng.sample(range(1, len(events)), n_cuts - 1)) if len(events) > 1 else []
        slots = sorted(rng.sample(range(n_batches), n_cuts))
        start = 0
        for slot, end in zip(slots, cuts + [len(events)]):
            batches[slot][node] = events[start:end]
            start = end
    return [b for b in batches if b]


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_backends_byte_identical(corpus, config):
    logs, bs = corpus
    options = CONFIGS[config]

    serial_flows, serial_reports, serial_snap = run_backend(
        logs, bs, options, SerialBackend()
    )
    pool_flows, pool_reports, pool_snap = run_backend(
        logs, bs, options, ProcessPoolBackend(workers=2, min_packets=1)
    )
    inc_runs = {
        "one batch": [logs],
        "three batches": shuffled_segments(logs, 3, seed=7),
        "many batches": shuffled_segments(logs, 11, seed=42),
    }

    reference = canonical(serial_flows)
    assert canonical(pool_flows) == reference
    assert pool_reports == serial_reports

    for label, batches in inc_runs.items():
        inc_flows, inc_reports, _ = run_backend(
            logs, bs, options, IncrementalBackend(), ingest_batches=batches
        )
        assert canonical(inc_flows) == reference, label
        assert inc_reports == serial_reports, label

    # counter totals survive sharding: the pool merges worker registries
    # back without losing or double-counting a packet
    assert pool_snap.counters == serial_snap.counters


@pytest.fixture(scope="module")
def corrupted_corpus(corpus, tmp_path_factory):
    """The module corpus saved to disk, corrupted on-store, reloaded
    tolerantly — what an analyst actually reconstructs from after
    collection damage."""
    from repro.events.store import StoreMetadata, load_store, save_store
    from repro.stress.faults import (
        DuplicateRecords,
        FaultPlan,
        GarbleLines,
        ReorderWindow,
    )
    from repro.util.rng import RngStreams

    logs, bs = corpus
    directory = tmp_path_factory.mktemp("corrupted-store")
    save_store(directory, logs, StoreMetadata(sink=0, base_station=bs, gen_interval=60.0))
    plan = FaultPlan(
        (GarbleLines(p=0.06), DuplicateRecords(p=0.04), ReorderWindow(window=5, p=0.3))
    )
    plan.apply(directory, RngStreams(99))
    loaded = load_store(directory)
    assert sum(loaded.corrupt_lines.values()) > 0  # the garbling bit
    return loaded.logs, bs


@pytest.mark.parametrize("config", ["default", "strip_times"])
def test_backends_byte_identical_on_corrupted_corpus(corrupted_corpus, config):
    """Equivalence must survive hostile corpora: garbled lines (tolerantly
    dropped), duplicated records and reordered windows reach every backend
    identically, so their results must stay byte-identical too."""
    logs, bs = corrupted_corpus
    options = CONFIGS[config]

    serial_flows, serial_reports, _ = run_backend(logs, bs, options, SerialBackend())
    pool_flows, pool_reports, _ = run_backend(
        logs, bs, options, ProcessPoolBackend(workers=2, min_packets=1)
    )
    reference = canonical(serial_flows)
    assert canonical(pool_flows) == reference
    assert pool_reports == serial_reports

    for label, batches in {
        "one batch": [logs],
        "five batches": shuffled_segments(logs, 5, seed=13),
    }.items():
        inc_flows, inc_reports, _ = run_backend(
            logs, bs, options, IncrementalBackend(), ingest_batches=batches
        )
        assert canonical(inc_flows) == reference, label
        assert inc_reports == serial_reports, label


def test_incremental_batched_refresh_with_late_truncation_on_corrupted_corpus(
    corrupted_corpus,
):
    """Regression pin for the batched dirty-set recomputation: ``refresh``
    reconstructs the whole dirty set in one serial pass with a reused
    reconstructor.  Refreshing after every shuffled batch — with one node's
    tail lost after the early rounds and another vanishing entirely — must
    stay byte-identical to a from-scratch serial run over the evidence that
    was actually delivered."""
    logs, bs = corrupted_corpus
    options = CONFIGS["default"]
    nodes = sorted(n for n in logs if n != bs and len(logs[n]) >= 3)
    truncated, vanished = nodes[0], nodes[1]

    batches = shuffled_segments(logs, 5, seed=61)
    # the first two batches arrive whole; from then on the truncated and
    # vanished nodes' remaining segments are lost
    delivered = []
    for i, batch in enumerate(batches):
        if i >= 2:
            batch = {
                n: evs for n, evs in batch.items() if n not in (truncated, vanished)
            }
        if batch:
            delivered.append(batch)

    session = ReconstructionSession(
        options=options, backend=IncrementalBackend(), delivery_node=bs
    )
    for batch in delivered:
        session.ingest(batch)
        session.refresh()  # one dirty-set recomputation per batch
    inc_flows = session.flows()
    inc_reports = session.reports()

    union: dict[int, list] = {}
    for batch in delivered:
        for node, events in batch.items():
            union.setdefault(node, []).extend(events)
    union_logs = {node: NodeLog(node, events) for node, events in union.items()}
    serial_flows, serial_reports, _ = run_backend(
        union_logs, bs, options, SerialBackend()
    )
    assert canonical(inc_flows) == canonical(serial_flows)
    assert inc_reports == serial_reports


def test_incremental_counters_cover_every_packet(corpus):
    logs, bs = corpus
    _, reports, snap = run_backend(
        logs, bs, RefillOptions(), IncrementalBackend(), ingest_batches=[logs]
    )
    assert snap.counters["refill.packets"] == len(reports)
    assert snap.counters["diagnose.packets"] == len(reports)
    assert snap.histograms["span.reconstruct.packet"].count == len(reports)
