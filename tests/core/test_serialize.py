"""Tests for JSON serialization of flows and reports."""

import json

import pytest

from repro.core.diagnosis import LossCause, LossReport, classify_flow
from repro.core.refill import Refill
from repro.core.serialize import (
    event_from_dict,
    event_to_dict,
    flow_from_dict,
    flow_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def sample_flow():
    logs = {
        1: NodeLog(1, [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]),
        3: NodeLog(3, [ev("dup", 3, 9, 3)]),  # will be omitted
    }
    return Refill(forwarder_template(with_gen=False)).reconstruct(logs)[PKT]


class TestEventRoundTrip:
    def test_full_event(self):
        event = Event.make("recv", 2, src=1, dst=2, packet=PKT, time=4.5, k="v")
        assert event_from_dict(event_to_dict(event)) == event

    def test_minimal_event(self):
        event = Event.make("gen", 7)
        data = event_to_dict(event)
        assert "src" not in data and "time" not in data
        assert event_from_dict(data) == event

    def test_json_encodable(self):
        event = Event.make("recv", 2, src=1, dst=2, packet=PKT, time=4.5)
        json.dumps(event_to_dict(event))  # must not raise


class TestFlowRoundTrip:
    def test_everything_survives(self):
        flow = sample_flow()
        data = flow_to_dict(flow)
        json.dumps(data)  # JSON-compatible
        back = flow_from_dict(data)
        assert back.packet == flow.packet
        assert back.labels() == flow.labels()
        assert back.hb_edges == flow.hb_edges
        assert back.omitted == flow.omitted
        assert back.anomalies == flow.anomalies
        assert back.final_states == flow.final_states
        assert back.visited_states == flow.visited_states
        assert [e.provenance for e in back.entries] == [
            e.provenance for e in flow.entries
        ]

    def test_diagnosis_identical_after_round_trip(self):
        flow = sample_flow()
        back = flow_from_dict(flow_to_dict(flow))
        assert classify_flow(back) == classify_flow(flow)

    def test_packetless_flow(self):
        from repro.core.event_flow import EventFlow

        flow = EventFlow()
        flow.append(Event.make("e1", 1), inferred=False)
        back = flow_from_dict(flow_to_dict(flow))
        assert back.packet is None
        assert back.labels() == flow.labels()


class TestReportRoundTrip:
    def test_round_trip(self):
        report = LossReport(LossCause.ACKED_LOSS, 7, ev("ack_recvd", 1, 1, 7))
        assert report_from_dict(report_to_dict(report)) == report

    def test_none_fields(self):
        report = LossReport(LossCause.UNKNOWN, None, None)
        data = report_to_dict(report)
        json.dumps(data)
        assert report_from_dict(data) == report
