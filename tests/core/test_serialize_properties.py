"""Property tests: serialization round-trips over the shared strategies.

The serve layer's correctness contract is byte identity of canonical JSON
between a daemon and a batch run, which leans entirely on
:mod:`repro.core.serialize` being a faithful bijection on what it emits.
These tests pin that down over random events, flows and reports: to_dict ∘
from_dict ∘ to_dict is the identity on dict form, and every dict form
survives an actual JSON wire trip (``dumps_canonical`` → ``json.loads``)
unchanged.
"""

import json

from hypothesis import given

from repro.core.serialize import (
    dumps_canonical,
    event_from_dict,
    event_to_dict,
    flow_from_dict,
    flow_to_dict,
    report_from_dict,
    report_to_dict,
)
from tests.strategies import event_flows, events, loss_reports


@given(events)
def test_event_round_trip(event):
    data = event_to_dict(event)
    assert event_from_dict(data) == event
    assert event_to_dict(event_from_dict(data)) == data


@given(events)
def test_event_survives_json_wire(event):
    data = event_to_dict(event)
    wired = json.loads(dumps_canonical(data))
    assert event_from_dict(wired) == event


@given(event_flows())
def test_flow_round_trip(flow):
    data = flow_to_dict(flow)
    rebuilt = flow_from_dict(data)
    assert flow_to_dict(rebuilt) == data
    # the semantic pieces, not just the dict shape
    assert rebuilt.packet == flow.packet
    assert rebuilt.events == flow.events
    assert rebuilt.hb_edges == flow.hb_edges
    assert rebuilt.omitted == flow.omitted
    assert rebuilt.anomalies == flow.anomalies
    assert rebuilt.final_states == flow.final_states
    assert rebuilt.visited_states == flow.visited_states
    assert [e.inferred for e in rebuilt.entries] == [
        e.inferred for e in flow.entries
    ]
    assert [e.provenance for e in rebuilt.entries] == [
        e.provenance for e in flow.entries
    ]


@given(event_flows())
def test_flow_survives_json_wire(flow):
    data = flow_to_dict(flow)
    wired = json.loads(dumps_canonical(data))
    assert flow_to_dict(flow_from_dict(wired)) == data


@given(loss_reports)
def test_report_round_trip(report):
    data = report_to_dict(report)
    assert report_from_dict(data) == report
    assert report_to_dict(report_from_dict(data)) == data


@given(loss_reports)
def test_report_survives_json_wire(report):
    wired = json.loads(dumps_canonical(report_to_dict(report)))
    assert report_from_dict(wired) == report


@given(loss_reports)
def test_canonical_dumps_is_stable(report):
    data = report_to_dict(report)
    once = dumps_canonical(data)
    again = dumps_canonical(json.loads(once))
    assert once == again
