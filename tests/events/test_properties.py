"""Property-based tests for the event model, codec and merging."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.codec import decode_event, decode_log, encode_event, encode_log
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet, interleave_round_robin
from repro.events.packet import PacketKey

SAFE_TEXT = st.text(string.ascii_lowercase + string.digits + "_", min_size=1, max_size=12)

packet_keys = st.builds(
    PacketKey,
    origin=st.integers(min_value=0, max_value=10_000),
    seq=st.integers(min_value=0, max_value=10_000),
)

events = st.builds(
    lambda etype, node, src, dst, packet, time, info: Event.make(
        etype, node, src=src, dst=dst, packet=packet, time=time, **info
    ),
    etype=SAFE_TEXT,
    node=st.integers(min_value=0, max_value=9999),
    src=st.none() | st.integers(min_value=0, max_value=9999),
    dst=st.none() | st.integers(min_value=0, max_value=9999),
    packet=st.none() | packet_keys,
    time=st.none() | st.floats(min_value=0, max_value=1e9, allow_nan=False),
    info=st.dictionaries(
        SAFE_TEXT.filter(lambda k: k not in ("node", "type", "src", "dst", "pkt", "t")),
        SAFE_TEXT,
        max_size=3,
    ),
)


class TestCodecProperties:
    @given(events)
    def test_event_round_trip(self, event):
        decoded = decode_event(encode_event(event))
        assert decoded == event

    @given(st.integers(min_value=0, max_value=99), st.lists(events, max_size=20))
    def test_log_round_trip(self, node, evs):
        log = NodeLog(node, [Event.make(e.etype, node, src=e.src, dst=e.dst,
                                        packet=e.packet, time=e.time) for e in evs])
        assert decode_log(node, encode_log(log)) == log


class TestPacketKeyProperties:
    @given(packet_keys)
    def test_round_trip(self, key):
        assert PacketKey.parse(str(key)) == key


def _subsequence(haystack, needle):
    it = iter(haystack)
    return all(x in it for x in needle)


class TestMergeProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=8),
            st.lists(SAFE_TEXT, max_size=15),
            max_size=6,
        )
    )
    def test_round_robin_preserves_per_node_subsequences(self, spec):
        logs = {
            node: NodeLog(node, [Event.make(label, node) for label in labels])
            for node, labels in spec.items()
        }
        merged = interleave_round_robin(logs)
        assert len(merged) == sum(len(log) for log in logs.values())
        for node, log in logs.items():
            merged_node = [e for e in merged if e.node == node]
            assert merged_node == list(log.events)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),  # node
                packet_keys,
                SAFE_TEXT,
            ),
            max_size=30,
        )
    )
    def test_group_by_packet_partitions_and_preserves_order(self, records):
        logs: dict[int, list[Event]] = {}
        for node, packet, etype in records:
            logs.setdefault(node, []).append(Event.make(etype, node, packet=packet))
        node_logs = {n: NodeLog(n, evs) for n, evs in logs.items()}
        grouped = group_by_packet(node_logs)
        total = sum(len(evs) for groups in grouped.values() for evs in groups.values())
        assert total == sum(len(v) for v in logs.values())
        for packet, by_node in grouped.items():
            for node, evs in by_node.items():
                original = [e for e in logs[node] if e.packet == packet]
                assert evs == original
