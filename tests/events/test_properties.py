"""Property-based tests for the event model, codec and merging.

The strategies live in :mod:`tests.strategies`, shared with the stress
harness's tests — same event vocabulary, same garbling model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.codec import (
    DecodeIssue,
    decode_event,
    decode_log,
    encode_event,
    encode_log,
    scan_log_bytes,
    scan_log_text,
    scan_log_text_legacy,
)
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet, interleave_round_robin
from repro.events.packet import PacketKey
from tests.strategies import (
    SAFE_TEXT,
    events,
    garbled_lines,
    log_line_bytes,
    packet_keys,
)


class TestCodecProperties:
    @given(events)
    def test_event_round_trip(self, event):
        decoded = decode_event(encode_event(event))
        assert decoded == event

    @given(st.integers(min_value=0, max_value=99), st.lists(events, max_size=20))
    def test_log_round_trip(self, node, evs):
        log = NodeLog(node, [Event.make(e.etype, node, src=e.src, dst=e.dst,
                                        packet=e.packet, time=e.time) for e in evs])
        assert decode_log(node, encode_log(log)) == log


class TestScannerProperties:
    @given(st.lists(garbled_lines() | events.map(encode_event), max_size=12))
    @settings(max_examples=100)
    def test_scan_never_raises_on_mutated_lines(self, lines):
        """The tolerant scanner classifies every non-blank line — it never
        raises, and every yield is an Event or a DecodeIssue with the
        offending text attached."""
        text = "\n".join(lines)
        seen = 0
        for lineno, decoded in scan_log_text(text):
            seen += 1
            assert 1 <= lineno <= len(lines)
            assert isinstance(decoded, (Event, DecodeIssue))
            if isinstance(decoded, DecodeIssue):
                assert decoded.error
        assert seen == sum(1 for line in lines if line.strip())

    @given(st.lists(garbled_lines(), max_size=8))
    @settings(max_examples=60)
    def test_garbled_store_loads_tolerantly(self, lines):
        """A store whose shard is arbitrarily garbled still loads; damage
        only ever shows up as ``corrupt_lines`` accounting."""
        import tempfile

        from repro.events.store import StoreMetadata, load_store, save_store, shard_path

        with tempfile.TemporaryDirectory() as tmp:
            save_store(tmp, {1: NodeLog(1, [])}, StoreMetadata(1, 2, 60.0))
            shard_path(tmp, 1).write_text("\n".join(lines) + "\n")
            store = load_store(tmp)
            decoded = len(store.logs.get(1, NodeLog(1)))
            corrupt = store.corrupt_lines.get(1, 0)
            assert decoded + corrupt == sum(1 for line in lines if line.strip())


#: Raw wire buffers: damaged lines joined by \n, sometimes with a tail
#: that has no trailing newline.
_wire_buffers = st.lists(log_line_bytes(), max_size=8).map(b"\n".join)


class TestBytesScannerProperties:
    """The byte-level tokenizer is observationally identical to the legacy
    str scanner on *arbitrary* byte input — valid, garbled, truncated
    mid-UTF-8, or framed with exotic separators."""

    @given(_wire_buffers)
    @settings(max_examples=200)
    def test_bytes_scanner_matches_legacy_scanner(self, data):
        """``scan_log_bytes`` and ``scan_log_text`` yield exactly what the
        legacy scanner yields (repr-compared: events can carry nan).  On
        undecodable input the bytes scanner raises ``UnicodeDecodeError``
        exactly like ``data.decode("utf-8")`` would."""
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError:
            with pytest.raises(UnicodeDecodeError):
                list(scan_log_bytes(data))
            return
        reference = [
            (lineno, repr(decoded)) for lineno, decoded in scan_log_text_legacy(text)
        ]
        assert [
            (lineno, repr(decoded)) for lineno, decoded in scan_log_text(text)
        ] == reference
        assert [
            (lineno, repr(decoded)) for lineno, decoded in scan_log_bytes(data)
        ] == reference

    @given(_wire_buffers)
    @settings(max_examples=200)
    def test_bytes_scanner_never_raises_on_decodable_input(self, data):
        """Full consumption classifies every non-blank line as an Event or
        a DecodeIssue — no other exception ever escapes."""
        try:
            data.decode("utf-8")
        except UnicodeDecodeError:
            return
        for lineno, decoded in scan_log_bytes(data):
            assert lineno >= 1
            assert isinstance(decoded, (Event, DecodeIssue))
            if isinstance(decoded, DecodeIssue):
                assert decoded.error


class TestPacketKeyProperties:
    @given(packet_keys)
    def test_round_trip(self, key):
        assert PacketKey.parse(str(key)) == key


def _subsequence(haystack, needle):
    it = iter(haystack)
    return all(x in it for x in needle)


class TestMergeProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=8),
            st.lists(SAFE_TEXT, max_size=15),
            max_size=6,
        )
    )
    def test_round_robin_preserves_per_node_subsequences(self, spec):
        logs = {
            node: NodeLog(node, [Event.make(label, node) for label in labels])
            for node, labels in spec.items()
        }
        merged = interleave_round_robin(logs)
        assert len(merged) == sum(len(log) for log in logs.values())
        for node, log in logs.items():
            merged_node = [e for e in merged if e.node == node]
            assert merged_node == list(log.events)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),  # node
                packet_keys,
                SAFE_TEXT,
            ),
            max_size=30,
        )
    )
    def test_group_by_packet_partitions_and_preserves_order(self, records):
        logs: dict[int, list[Event]] = {}
        for node, packet, etype in records:
            logs.setdefault(node, []).append(Event.make(etype, node, packet=packet))
        node_logs = {n: NodeLog(n, evs) for n, evs in logs.items()}
        grouped = group_by_packet(node_logs)
        total = sum(len(evs) for groups in grouped.values() for evs in groups.values())
        assert total == sum(len(v) for v in logs.values())
        for packet, by_node in grouped.items():
            for node, evs in by_node.items():
                original = [e for e in logs[node] if e.packet == packet]
                assert evs == original
