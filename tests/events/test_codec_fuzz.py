"""Fuzz tests: the codec must reject garbage cleanly, never crash or hang."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.events.codec import decode_event
from repro.events.store import load_store, save_store, StoreMetadata
from repro.events.log import NodeLog


class TestDecodeFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_decode_never_crashes_unexpectedly(self, line):
        """Any input either parses or raises ValueError — nothing else."""
        if not line.strip():
            return
        try:
            event = decode_event(line)
        except ValueError:
            return
        # if it parsed, it must at least carry node and type
        assert isinstance(event.node, int)
        assert event.etype

    @given(st.binary(max_size=120))
    @settings(max_examples=100)
    def test_binary_garbage_in_store_is_tolerated(self, blob):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            save_store(tmp, {1: NodeLog(1, [])}, StoreMetadata(1, 2, 60.0))
            text = blob.decode("utf-8", errors="replace")
            from pathlib import Path

            (Path(tmp) / "node_0001.log").write_text(text + "\n")
            store = load_store(tmp)  # tolerant mode: must not raise
            assert store.corrupt_lines.get(1, 0) >= 0

    @given(
        st.lists(
            st.sampled_from([
                "node=1 type=recv src=2 dst=1 pkt=p2.9",
                "node=1 type=gen",
                "node=1 type=gen extra",       # malformed token
                "node=2 type=gen",              # wrong node for the file
                "= = =",                        # nonsense
                "",
            ]),
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_mixed_good_and_bad_lines(self, lines):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            save_store(tmp, {1: NodeLog(1, [])}, StoreMetadata(1, 2, 60.0))
            (Path(tmp) / "node_0001.log").write_text("\n".join(lines) + "\n")
            store = load_store(tmp)
            good = sum(
                1 for l in lines
                if l in ("node=1 type=recv src=2 dst=1 pkt=p2.9", "node=1 type=gen")
            )
            assert len(store.logs[1]) == good
