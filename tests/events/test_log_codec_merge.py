"""Unit tests for node logs, the text codec and log merging."""

import pytest

from repro.events.codec import decode_event, decode_log, encode_event, encode_log
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.merge import (
    group_by_packet,
    interleave_round_robin,
    merge_logs,
    packets_in,
)
from repro.events.packet import PacketKey


def ev(etype, node, src=None, dst=None, pkt=None, t=None, **info):
    return Event.make(etype, node, src=src, dst=dst, packet=pkt, time=t, **info)


class TestNodeLog:
    def test_append_preserves_order(self):
        log = NodeLog(1)
        e1 = ev(EventType.TRANS, 1, 1, 2)
        e2 = ev(EventType.ACK, 1, 1, 2)
        log.append(e1)
        log.append(e2)
        assert list(log) == [e1, e2]
        assert [r.index for r in log.records()] == [0, 1]

    def test_append_rejects_foreign_events(self):
        log = NodeLog(1)
        with pytest.raises(ValueError):
            log.append(ev(EventType.RECV, 2, 1, 2))

    def test_filtered_keeps_order_and_validates_mask(self):
        events = [ev(EventType.TRANS, 1, 1, 2, PacketKey(1, i)) for i in range(4)]
        log = NodeLog(1, events)
        kept = log.filtered([True, False, True, False])
        assert list(kept) == [events[0], events[2]]
        with pytest.raises(ValueError):
            log.filtered([True])

    def test_truncated(self):
        events = [ev(EventType.TRANS, 1, 1, 2, PacketKey(1, i)) for i in range(3)]
        log = NodeLog(1, events)
        assert list(log.truncated(2)) == events[:2]
        assert len(log.truncated(0)) == 0
        with pytest.raises(ValueError):
            log.truncated(-1)

    def test_packets(self):
        log = NodeLog(1, [
            ev(EventType.TRANS, 1, 1, 2, PacketKey(1, 0)),
            ev(EventType.TRANS, 1, 1, 2, PacketKey(1, 1)),
            ev(EventType.GEN, 1),
        ])
        assert log.packets() == {PacketKey(1, 0), PacketKey(1, 1)}


class TestCodec:
    def test_event_round_trip_full(self):
        e = ev(EventType.RECV, 2, 1, 2, PacketKey(1, 7), t=3.25, reason="queue")
        assert decode_event(encode_event(e)) == e

    def test_event_round_trip_minimal(self):
        e = ev(EventType.GEN, 9)
        assert decode_event(encode_event(e)) == e

    def test_log_round_trip(self):
        log = NodeLog(3, [
            ev(EventType.RECV, 3, 2, 3, PacketKey(1, 0)),
            ev(EventType.TRANS, 3, 3, 4, PacketKey(1, 0)),
        ])
        assert decode_log(3, encode_log(log)) == log

    def test_decode_rejects_malformed(self):
        with pytest.raises(ValueError):
            decode_event("node=1 oops")
        with pytest.raises(ValueError):
            decode_event("type=recv")  # missing node
        with pytest.raises(ValueError):
            decode_event("node=1 type=recv node=2")  # duplicate key

    def test_encode_rejects_reserved_info_keys(self):
        with pytest.raises(ValueError):
            encode_event(Event.make("recv", 1, pkt="p1.2"))
        with pytest.raises(ValueError):
            encode_event(Event.make("recv", 1, t=1.0))

    def test_encode_rejects_unsafe_values(self):
        with pytest.raises(ValueError):
            encode_event(Event.make("recv", 1, k="a b"))

    def test_decode_skips_blank_lines(self):
        text = "\n".join(["node=1 type=gen", "", "   ", "node=1 type=trans src=1 dst=2"])
        assert len(decode_log(1, text)) == 2


class TestMerge:
    def test_round_robin_preserves_per_node_order(self):
        logs = {
            1: NodeLog(1, [ev("a", 1), ev("b", 1), ev("c", 1)]),
            2: NodeLog(2, [ev("x", 2)]),
        }
        merged = interleave_round_robin(logs)
        node1_events = [e for e in merged if e.node == 1]
        assert [e.etype for e in node1_events] == ["a", "b", "c"]
        assert len(merged) == 4

    def test_round_robin_alternates(self):
        logs = {
            1: NodeLog(1, [ev("a", 1), ev("b", 1)]),
            2: NodeLog(2, [ev("x", 2), ev("y", 2)]),
        }
        assert [e.etype for e in interleave_round_robin(logs)] == ["a", "x", "b", "y"]

    def test_group_by_packet(self):
        p0, p1 = PacketKey(1, 0), PacketKey(1, 1)
        logs = {
            1: NodeLog(1, [
                ev(EventType.TRANS, 1, 1, 2, p0),
                ev(EventType.TRANS, 1, 1, 2, p1),
                ev(EventType.ACK, 1, 1, 2, p0),
            ]),
            2: NodeLog(2, [ev(EventType.RECV, 2, 1, 2, p0), ev("beacon", 2)]),
        }
        grouped = group_by_packet(logs)
        assert set(grouped) == {p0, p1}
        assert [e.etype for e in grouped[p0][1]] == ["trans", "ack_recvd"]
        assert [e.etype for e in grouped[p0][2]] == ["recv"]
        # packet-less events are excluded
        assert all(e.packet is not None for evs in grouped[p0].values() for e in evs)

    def test_packets_in_sorted(self):
        logs = {
            1: NodeLog(1, [ev(EventType.TRANS, 1, 1, 2, PacketKey(2, 0))]),
            2: NodeLog(2, [ev(EventType.RECV, 2, 1, 2, PacketKey(1, 5))]),
        }
        assert packets_in(logs) == [PacketKey(1, 5), PacketKey(2, 0)]

    def test_merge_logs_normalizes(self):
        logs = {2: NodeLog(2, [ev("x", 2)]), 1: NodeLog(1, [ev("a", 1)])}
        normalized = merge_logs(logs)
        assert list(normalized) == [1, 2]
        assert normalized[1][0].etype == "a"
