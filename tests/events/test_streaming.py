"""Tests for the streaming merge layer and the shard-at-a-time store."""

import pytest

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import (
    LogSource,
    group_by_packet,
    iter_packet_groups,
    split_collection_rounds,
)
from repro.events.packet import PacketKey
from repro.events.store import (
    ShardedStore,
    StoreMetadata,
    iter_store_logs,
    load_store,
    save_store,
)


def ev(etype, node, pkt=None, time=None):
    return Event.make(etype, node, packet=pkt, time=time)


@pytest.fixture()
def logs():
    packets = [PacketKey(n, s) for n in (1, 2, 3) for s in range(4)]
    out = {}
    for node in (1, 2, 3, 99):
        events = [ev("recv", node, pkt=p) for p in packets if p.origin != node]
        events.append(ev("beacon", node))  # packet-less, must be ignored
        out[node] = NodeLog(node, events)
    return out


class TestIterPacketGroups:
    def test_union_equals_full_grouping(self, logs):
        full = group_by_packet(logs)
        streamed = {}
        for batch in iter_packet_groups(logs, batch_size=5):
            for packet, group in batch:
                streamed[packet] = group
        assert streamed == full

    def test_batches_bounded_and_sorted(self, logs):
        seen = []
        for batch in iter_packet_groups(logs, batch_size=5):
            assert 1 <= len(batch) <= 5
            seen.extend(packet for packet, _ in batch)
        assert seen == sorted(seen)
        assert len(seen) == len(group_by_packet(logs))

    def test_groups_are_complete_per_batch(self, logs):
        # every yielded group already holds ALL evidence for its packet
        full = group_by_packet(logs)
        for batch in iter_packet_groups(logs, batch_size=1):
            ((packet, group),) = batch
            assert group == full[packet]

    def test_invalid_batch_size(self, logs):
        with pytest.raises(ValueError):
            next(iter_packet_groups(logs, batch_size=0))


class TestShardedStore:
    @pytest.fixture()
    def store_dir(self, tmp_path, logs):
        meta = StoreMetadata(sink=1, base_station=99, gen_interval=60.0)
        return save_store(tmp_path / "store", logs, meta)

    def test_satisfies_log_source_protocol(self, store_dir):
        assert isinstance(ShardedStore(store_dir), LogSource)

    def test_iter_logs_matches_bulk_load(self, store_dir):
        sharded = dict(ShardedStore(store_dir).iter_logs())
        loaded = load_store(store_dir).logs
        assert set(sharded) == set(loaded)
        for node in loaded:
            assert list(sharded[node]) == list(loaded[node])

    def test_reiterable(self, store_dir):
        store = ShardedStore(store_dir)
        first = [node for node, _ in store.iter_logs()]
        second = [node for node, _ in store.iter_logs()]
        assert first == second == store.nodes()

    def test_streaming_groups_from_shards(self, store_dir, logs):
        # the whole point: bounded grouping straight off the disk store
        streamed = {}
        for batch in iter_packet_groups(ShardedStore(store_dir), batch_size=3):
            streamed.update(dict(batch))
        assert streamed == group_by_packet(load_store(store_dir).logs)

    def test_corrupt_lines_counted_per_pass(self, store_dir):
        shard = store_dir / "node_0001.log"
        shard.write_text(shard.read_text() + "@@@ not a log line\n")
        store = ShardedStore(store_dir)
        assert store.corrupt_lines == {}  # no pass completed yet
        list(store.iter_logs())
        assert store.corrupt_lines == {1: 1}
        list(store.iter_logs())
        assert store.corrupt_lines == {1: 1}  # per pass, not summed

    def test_strict_mode_raises(self, store_dir):
        shard = store_dir / "node_0001.log"
        shard.write_text(shard.read_text() + "@@@\n")
        with pytest.raises(ValueError):
            list(ShardedStore(store_dir, strict=True).iter_logs())

    def test_load_node(self, store_dir, logs):
        store = ShardedStore(store_dir)
        assert list(store.load_node(2)) == list(logs[2])
        absent = store.load_node(12345)
        assert absent.node == 12345 and len(absent) == 0

    def test_iter_store_logs_shard_at_a_time(self, store_dir, logs):
        nodes = [node for node, _log, _bad in iter_store_logs(store_dir)]
        assert nodes == sorted(logs)


class TestSplitCollectionRounds:
    def test_concatenation_restores_logs(self, logs):
        rebuilt: dict[int, list] = {}
        for batch in split_collection_rounds(logs, rounds=4):
            for node, events in batch.items():
                rebuilt.setdefault(node, []).extend(events)
        assert rebuilt == {n: list(log) for n, log in logs.items()}

    def test_single_round_is_everything(self, logs):
        (batch,) = list(split_collection_rounds(logs, rounds=1))
        assert batch == {n: list(log) for n, log in logs.items()}

    def test_more_rounds_than_events(self):
        logs = {7: NodeLog(7, [ev("recv", 7, pkt=PacketKey(1, 0))])}
        batches = list(split_collection_rounds(logs, rounds=10))
        assert len(batches) == 1 and batches[0] == {7: list(logs[7])}

    def test_invalid_rounds(self, logs):
        with pytest.raises(ValueError):
            list(split_collection_rounds(logs, rounds=0))
