"""Malformed-log handling: tolerant decode and the LC* lint must agree.

The paper's premise is that field logs are individually lossy and dirty;
the codec therefore has to survive truncated flash pages, half-written
lines and garbage without giving up on the rest of the shard.
"""

import pytest

from repro.check import check_corpus
from repro.events.codec import (
    DecodeIssue,
    decode_event,
    encode_event,
    scan_log_text,
)
from repro.events.event import Event
from repro.events.packet import PacketKey


def sample_event():
    return Event.make(
        "send", 4, src=4, dst=2, packet=PacketKey(4, 7), time=12.5, retries="1"
    )


class TestTruncatedLines:
    def test_truncated_typed_value_raises(self):
        line = encode_event(sample_event())
        with pytest.raises(ValueError):
            decode_event(line[: line.index(" t=") + 3])

    def test_truncated_info_value_is_tolerated(self):
        # Unknown keys carry free-form strings, so an empty value is legal.
        event = decode_event("node=4 type=send retries=")
        assert dict(event.info) == {"retries": ""}

    def test_truncated_mid_key_raises(self):
        with pytest.raises(ValueError):
            decode_event("node=4 typ")

    def test_truncation_before_required_fields_raises(self):
        with pytest.raises(ValueError):
            decode_event("node=4")

    def test_scan_survives_truncation_and_keeps_the_rest(self):
        good = encode_event(sample_event())
        text = f"{good}\nnode=4 typ\n{good}\n"
        decoded = list(scan_log_text(text))
        assert [lineno for lineno, _ in decoded] == [1, 2, 3]
        assert isinstance(decoded[0][1], Event)
        assert isinstance(decoded[1][1], DecodeIssue)
        assert isinstance(decoded[2][1], Event)
        assert decoded[1][1].line == "node=4 typ"


class TestReorderedFields:
    def test_field_order_is_irrelevant(self):
        """On-mote writers may flush fields in any order; decode is by key."""
        event = sample_event()
        tokens = encode_event(event).split()
        reordered = " ".join(reversed(tokens))
        assert decode_event(reordered) == event

    def test_duplicate_field_is_rejected(self):
        with pytest.raises(ValueError):
            decode_event("node=4 node=4 type=send")


class TestGarbageLines:
    @pytest.mark.parametrize(
        "line",
        [
            "@@@@ flash page reset @@@@",
            "\x00\x01\x02",
            "pkt=p1.2",  # valid token, but no node/type
            "node=x type=send",  # non-integer node
            "node=4 type=send t=yesterday",
            "node=4 type=send pkt=garbage",
        ],
    )
    def test_garbage_raises_value_error(self, line):
        with pytest.raises(ValueError):
            decode_event(line)

    def test_scan_reports_issue_with_reason(self):
        issues = [
            item for _, item in scan_log_text("@@@\n") if isinstance(item, DecodeIssue)
        ]
        assert len(issues) == 1
        assert issues[0].error


class TestLintAgreement:
    def test_malformed_lines_surface_as_lc001(self, tmp_path):
        good = encode_event(sample_event()).replace("node=4", "node=1")
        (tmp_path / "operations.json").write_text(
            '{"sink": 1, "base_station": 1, "gen_interval": 60.0}'
        )
        (tmp_path / "node_0001.log").write_text(
            f"{good}\nnode=1 typ\n@@@\n{good.replace('pkt=p4.7', 'pkt=p4.8')}\n"
        )
        findings, stats = check_corpus(tmp_path, None)
        lc001 = [f for f in findings if f.code == "LC001"]
        assert {f.location for f in lc001} == {
            "node_0001.log:2",
            "node_0001.log:3",
        }
        assert stats == {"files": 1, "lines": 4, "events": 2, "corrupt": 2}
