"""Unit tests for the event model (paper §II, Table I)."""

import pytest

from repro.events.event import (
    Event,
    EventType,
    RECEIVER_SIDE_EVENTS,
    SENDER_SIDE_EVENTS,
)
from repro.events.packet import PacketKey


class TestPacketKey:
    def test_round_trip(self):
        key = PacketKey(12, 345)
        assert PacketKey.parse(str(key)) == key

    def test_str_form(self):
        assert str(PacketKey(1, 2)) == "p1.2"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            PacketKey.parse("x1.2")
        with pytest.raises(ValueError):
            PacketKey.parse("p1-2")

    def test_ordering_by_origin_then_seq(self):
        assert PacketKey(1, 9) < PacketKey(2, 0)
        assert PacketKey(1, 1) < PacketKey(1, 2)


class TestEvent:
    def test_make_freezes_info(self):
        e = Event.make(EventType.RECV, 2, src=1, dst=2, reason="x", count=3)
        assert e.info_dict == {"reason": "x", "count": 3}
        assert e.info == (("count", 3), ("reason", "x"))

    def test_make_accepts_enum_and_string(self):
        assert Event.make(EventType.TRANS, 1).etype == "trans"
        assert Event.make("trans", 1).etype == "trans"

    def test_peer_from_sender_side(self):
        e = Event.make(EventType.TRANS, 1, src=1, dst=2)
        assert e.peer == 2

    def test_peer_from_receiver_side(self):
        e = Event.make(EventType.RECV, 2, src=1, dst=2)
        assert e.peer == 1

    def test_peer_none_for_local_events(self):
        assert Event.make(EventType.GEN, 3).peer is None

    def test_pair_label_matches_paper_notation(self):
        assert Event.make(EventType.TRANS, 1, src=1, dst=2).pair_label() == "1-2 trans"
        assert Event.make(EventType.ACK, 1, src=1, dst=2).pair_label() == "1-2 ack recvd"
        assert Event.make(EventType.GEN, 5).pair_label() == "@5 gen"

    def test_with_time_and_without_time(self):
        e = Event.make(EventType.RECV, 2, src=1, dst=2, time=1.5)
        assert e.with_time(9.0).time == 9.0
        assert e.without_time().time is None
        # original untouched (frozen dataclass)
        assert e.time == 1.5

    def test_events_are_hashable_and_equal_by_value(self):
        a = Event.make(EventType.RECV, 2, src=1, dst=2, packet=PacketKey(1, 0))
        b = Event.make(EventType.RECV, 2, src=1, dst=2, packet=PacketKey(1, 0))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_side_classification_is_disjoint_and_total_for_pair_events(self):
        pair_events = SENDER_SIDE_EVENTS | RECEIVER_SIDE_EVENTS
        assert not (SENDER_SIDE_EVENTS & RECEIVER_SIDE_EVENTS)
        assert pair_events == {"trans", "ack_recvd", "timeout", "recv", "dup", "overflow"}
