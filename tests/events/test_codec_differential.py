"""Differential golden-corpus suite: fast tokenizer vs legacy scanner.

The codec's two-tier decode (``_decode_fast`` / ``_decode_fast_bytes`` with
the legacy token-loop parser as fallback) must be *observationally
identical* to the pre-tokenizer scanner on every corpus the repo ships:
committed fixture stores, stress-garbled mutations of them, and a
simulated-deployment corpus like the ones ``examples/`` build.  "Identical"
means the full scan output — line numbers, event payloads, ``DecodeIssue``
errors — compared by ``repr`` (events can carry ``nan`` times, and
``nan != nan``).

``scan_log_bytes`` is additionally pinned against the text scanners on the
raw bytes of every corpus, and ``load_store``'s corrupt-line counts are
re-derived from the legacy scanner so the tolerant loader can never drift.
"""

import pathlib
import random

import pytest

from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.events.codec import (
    DecodeIssue,
    encode_event,
    scan_log_bytes,
    scan_log_text,
    scan_log_text_legacy,
)
from repro.events.store import load_store
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee
from repro.stress.faults import GarbleLines

FIXTURES = pathlib.Path(__file__).parent.parent / "fixtures"

#: Every committed store directory with node shards.
STORE_DIRS = sorted(
    {f.parent for f in FIXTURES.glob("**/node_*.log")},
    key=lambda p: str(p),
)

LOG_FILES = sorted(FIXTURES.glob("**/node_*.log"), key=lambda p: str(p))


def _render(scan):
    """Scanner output as comparable text (repr handles nan times)."""
    out = []
    for lineno, decoded in scan:
        kind = "issue" if isinstance(decoded, DecodeIssue) else "event"
        out.append((lineno, kind, repr(decoded)))
    return out


def _assert_equivalent(text: str) -> None:
    """All three scanners agree on ``text`` (bytes path fed its encoding)."""
    reference = _render(scan_log_text_legacy(text))
    assert _render(scan_log_text(text)) == reference
    assert _render(scan_log_bytes(text.encode("utf-8"))) == reference


@pytest.mark.parametrize(
    "log_file", LOG_FILES, ids=lambda p: f"{p.parent.name}-{p.name}"
)
def test_committed_fixture_logs_scan_identically(log_file):
    data = log_file.read_bytes()
    text = data.decode("utf-8")
    reference = _render(scan_log_text_legacy(text))
    assert _render(scan_log_text(text)) == reference
    assert _render(scan_log_bytes(data)) == reference


@pytest.mark.parametrize("store_dir", STORE_DIRS, ids=lambda p: p.name)
def test_load_store_corrupt_counts_match_legacy_scanner(store_dir):
    """The tolerant loader's per-node bad-line counts are exactly the
    legacy scanner's issue count plus misfiled-node events."""
    if not (store_dir / "operations.json").exists():
        pytest.skip("not a loadable store (no operations.json)")
    store = load_store(store_dir)
    for file in sorted(store_dir.glob("node_*.log")):
        node = int(file.stem.split("_")[1])
        expected = 0
        for _lineno, decoded in scan_log_text_legacy(file.read_text()):
            if isinstance(decoded, DecodeIssue) or decoded.node != node:
                expected += 1
        assert store.corrupt_lines.get(node, 0) == expected


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_stress_garbled_corpora_scan_identically(seed):
    """Fixture lines put through the stress garbler's mutation modes."""
    stream = random.Random(seed)
    lines = []
    for file in LOG_FILES:
        lines.extend(file.read_text().splitlines())
    garbled = [
        GarbleLines._mutate(line, stream) if line and stream.random() < 0.4 else line
        for line in lines
    ]
    _assert_equivalent("\n".join(garbled))


def test_simulated_deployment_corpus_scans_identically():
    """A collected simnet corpus — the kind every example script builds."""
    params = citysee(n_nodes=12, days=1, seed=20260809)
    sim = run_simulation(params)
    logs = collect_logs(sim.true_logs, default_loss_spec(sim), seed=7)
    text = "\n".join(
        encode_event(event) for node in sorted(logs) for event in logs[node]
    )
    _assert_equivalent(text)


def test_edge_corpus_scans_identically():
    """Hand-picked irregular lines that force the strict fallback."""
    lines = [
        "node=1 type=recv src=2 dst=1 pkt=p2.9 t=1.5",  # canonical
        "node=1 type=recv dst=1 src=2",                 # out-of-order fields
        "node=1 type=gen t=nan",                        # nan time
        "node=1 type=gen t=inf",
        "node=1 type=gen t=1e400",                      # overflow float
        "  node=3   type=gen  ",                        # non-canonical spacing
        "node=1 type=gen node=2",                       # duplicate field
        "node=01 type=gen",                             # non-canonical int
        "node=+1 type=gen",
        "node=1 type=gen pkt=p1.2 pkt=p1.3",
        "node=1 type=gen extra",                        # bare token
        "node=1",                                       # missing type
        "type=gen node=1",                              # reordered required
        "node=1 type=gen k=v k=w",                      # duplicate info key
        "node=1 type=gen t=",                           # empty value
        "node=1\ttype=gen",                             # tab separator
        "node=1 type=gen x=é",                     # non-ASCII info value
        "node=1 type=recv src=-2 dst=1",                # negative node
        "pkt=p1.1 node=1 type=fwd",
        "",
        "   ",
        "=",
        "====",
        "node==1 type=gen",
    ]
    _assert_equivalent("\n".join(lines))
    # and interleaved with valid lines, repeated, in one buffer
    _assert_equivalent("\n".join(lines * 3))
