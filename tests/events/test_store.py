"""Unit tests for the on-disk log store."""

import pytest

from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.events.store import LoadedStore, StoreMetadata, load_store, save_store


@pytest.fixture()
def sample_logs():
    pkt = PacketKey(1, 0)
    return {
        1: NodeLog(1, [
            Event.make("gen", 1, packet=pkt, time=0.0),
            Event.make("trans", 1, src=1, dst=2, packet=pkt, time=1.0),
        ]),
        2: NodeLog(2, [Event.make("recv", 2, src=1, dst=2, packet=pkt, time=1.5)]),
    }


@pytest.fixture()
def metadata():
    return StoreMetadata(
        sink=2, base_station=3, gen_interval=60.0,
        outages=((10.0, 20.0),), extra={"seed": 9},
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path, sample_logs, metadata):
        save_store(tmp_path / "store", sample_logs, metadata)
        store = load_store(tmp_path / "store")
        assert store.logs == sample_logs
        assert store.metadata.sink == 2
        assert store.metadata.outages == ((10.0, 20.0),)
        assert store.metadata.extra["seed"] == 9
        assert store.corrupt_lines == {}
        assert store.total_events == 3

    def test_metadata_json_round_trip(self, metadata):
        assert StoreMetadata.from_json(metadata.to_json()) == metadata


class TestTolerantLoading:
    def corrupt(self, tmp_path, sample_logs, metadata, extra_lines):
        path = save_store(tmp_path / "store", sample_logs, metadata)
        target = path / "node_0001.log"
        target.write_text(target.read_text() + extra_lines)
        return path

    def test_garbage_lines_skipped_and_counted(self, tmp_path, sample_logs, metadata):
        path = self.corrupt(tmp_path, sample_logs, metadata, "xx yy zz\n")
        store = load_store(path)
        assert store.corrupt_lines == {1: 1}
        assert len(store.logs[1]) == 2  # the good records survive

    def test_wrong_node_line_skipped(self, tmp_path, sample_logs, metadata):
        path = self.corrupt(tmp_path, sample_logs, metadata, "node=9 type=gen\n")
        store = load_store(path)
        assert store.corrupt_lines == {1: 1}

    def test_strict_mode_raises(self, tmp_path, sample_logs, metadata):
        path = self.corrupt(tmp_path, sample_logs, metadata, "broken line\n")
        with pytest.raises(ValueError):
            load_store(path, strict=True)

    def test_missing_metadata_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_store(tmp_path / "empty")
