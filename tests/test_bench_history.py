"""The perf-regression gate: snapshot diffing, thresholds, and the CLI.

Runs entirely on synthetic fixtures (``tests/fixtures/bench-history/``)
plus the repo's own committed baselines — no benchmark ever executes here,
so the suite stays fast and machine-independent.
"""

import json
import pathlib

import pytest

from benchmarks.bench_history import (
    METRIC_SPECS,
    MetricSpec,
    append_history,
    diff_metric,
    diff_snapshots,
    infer_bench,
    load_snapshot,
    main,
    metric_value,
)

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "bench-history"
REPO = pathlib.Path(__file__).parent.parent

BASELINE = str(FIXTURES / "baseline.json")
REGRESSED = str(FIXTURES / "regressed.json")
IMPROVED = str(FIXTURES / "improved.json")


class TestMetricValue:
    def test_dotted_path_resolution(self):
        snap = {"a": {"b": {"c": 3}}}
        assert metric_value(snap, "a.b.c") == 3.0

    def test_missing_hops_are_none(self):
        assert metric_value({"a": 1}, "a.b") is None
        assert metric_value({}, "a") is None

    def test_non_numeric_leaves_are_none(self):
        assert metric_value({"a": "fast"}, "a") is None
        assert metric_value({"a": True}, "a") is None


class TestDiffMetric:
    def test_higher_is_better_direction(self):
        spec = MetricSpec("ingest.lines_per_s", "higher", 0.40)
        base = {"ingest": {"lines_per_s": 100.0}}
        assert diff_metric(spec, base, {"ingest": {"lines_per_s": 59.0}}).regressed
        ok = diff_metric(spec, base, {"ingest": {"lines_per_s": 61.0}})
        assert not ok.regressed and not ok.improved
        assert diff_metric(spec, base, {"ingest": {"lines_per_s": 141.0}}).improved

    def test_lower_is_better_direction(self):
        spec = MetricSpec("p95", "lower", 0.60)
        base = {"p95": 0.010}
        assert diff_metric(spec, base, {"p95": 0.017}).regressed
        assert not diff_metric(spec, base, {"p95": 0.015}).regressed
        assert diff_metric(spec, base, {"p95": 0.003}).improved

    def test_missing_or_zero_baseline_is_no_data_not_failure(self):
        spec = MetricSpec("x", "higher", 0.40)
        delta = diff_metric(spec, {}, {"x": 5.0})
        assert delta.ratio is None and not delta.regressed
        delta = diff_metric(spec, {"x": 0.0}, {"x": 5.0})
        assert delta.ratio is None and not delta.regressed

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MetricSpec("x", "sideways", 0.4)
        with pytest.raises(ValueError):
            MetricSpec("x", "higher", 0.0)


class TestLoadSnapshot:
    def test_schema_less_files_read_as_v1(self, tmp_path):
        legacy = tmp_path / "BENCH_serve.json"
        legacy.write_text('{"ingest": {"lines_per_s": 10.0}}')
        assert load_snapshot(legacy)["schema"] == 1

    def test_future_schema_rejected(self, tmp_path):
        weird = tmp_path / "x.json"
        weird.write_text('{"schema": 99}')
        with pytest.raises(ValueError):
            load_snapshot(weird)

    def test_non_object_rejected(self, tmp_path):
        weird = tmp_path / "x.json"
        weird.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_snapshot(weird)


class TestInferBench:
    def test_from_stem(self):
        assert infer_bench("some/dir/BENCH_serve.json", None) == "serve"
        assert infer_bench("BENCH_backends.json", None) == "backends"

    def test_explicit_wins(self):
        assert infer_bench("whatever.json", "serve") == "serve"

    def test_unrecognizable_raises(self):
        with pytest.raises(ValueError):
            infer_bench("snapshot.json", None)

    def test_unknown_bench_raises_in_diff(self):
        with pytest.raises(ValueError):
            diff_snapshots({}, {}, "nonesuch")


class TestCompareCommand:
    def test_identical_snapshots_pass(self, capsys):
        code = main(["compare", BASELINE, BASELINE, "--bench", "serve"])
        assert code == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_regression_fails_with_attribution_hint(self, capsys):
        code = main(["compare", BASELINE, REGRESSED, "--bench", "serve"])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "ingest.lines_per_s" in captured.out
        assert "record --note" in captured.err

    def test_improvement_is_not_a_failure(self, capsys):
        code = main(["compare", BASELINE, IMPROVED, "--bench", "serve"])
        assert code == 0
        assert "improved" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, capsys):
        code = main(["compare", BASELINE, REGRESSED, "--bench", "serve",
                     "--json"])
        assert code == 1
        deltas = json.loads(capsys.readouterr().out)
        by_metric = {d["metric"]: d for d in deltas}
        assert by_metric["ingest.lines_per_s"]["regressed"] is True
        assert by_metric["ingest.lines_per_s"]["ratio"] == pytest.approx(0.4)


class TestRecordCommand:
    def test_record_appends_attributed_entry(self, tmp_path, capsys):
        history = tmp_path / "serve.jsonl"
        code = main([
            "record", BASELINE, REGRESSED, "--bench", "serve",
            "--note", "known slowdown: tracing spans added",
            "--history", str(history),
        ])
        assert code == 0
        [entry] = [json.loads(line) for line in history.read_text().splitlines()]
        assert entry["bench"] == "serve"
        assert entry["note"] == "known slowdown: tracing spans added"
        assert entry["regressions"] == 1
        assert len(entry["deltas"]) == len(METRIC_SPECS["serve"])

    def test_append_history_accumulates(self, tmp_path):
        history = tmp_path / "h.jsonl"
        deltas = diff_snapshots(
            load_snapshot(BASELINE), load_snapshot(BASELINE), "serve"
        )
        append_history("serve", deltas, "first", path=history)
        append_history("serve", deltas, "second", path=history)
        notes = [
            json.loads(line)["note"]
            for line in history.read_text().splitlines()
        ]
        assert notes == ["first", "second"]


class TestCommittedTrajectory:
    """The repo's own committed gate inputs must be internally consistent."""

    def test_committed_baseline_vs_current_is_green(self):
        baseline = REPO / "benchmarks" / "baselines" / "BENCH_serve.json"
        current = REPO / "BENCH_serve.json"
        assert baseline.exists() and current.exists()
        assert main(["compare", str(baseline), str(current)]) == 0

    def test_committed_history_entries_are_well_formed(self):
        history = REPO / "benchmarks" / "history" / "serve.jsonl"
        entries = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert entries
        for entry in entries:
            assert entry["bench"] == "serve"
            assert entry["note"]
            assert {"recorded_at", "deltas", "regressions"} <= set(entry)
