"""Paper Fig. 3 — cascading, 1-to-many, many-to-1 and mixed inter-node
transitions.

Three nodes with two-step chain FSMs:

- node 1: s1 --e1--> s2 --e2--> s3
- node 2: s4 --e3--> s5 --e4--> s6
- node 3: s7 --e5--> s8 --e6--> s9

The inter-node prerequisite wiring differs per sub-figure.  Expected flows
and constraint sets are quoted from the figure caption.
"""

import pytest

from repro.core.transition_algorithm import PacketReconstructor
from repro.events.event import Event
from repro.fsm.prerequisites import PrereqRule
from repro.fsm.templates import chain_template


def make_templates(prereqs_by_node):
    labels = {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]}
    first = {1: 1, 2: 4, 3: 7}  # paper numbering: s1..s3, s4..s6, s7..s9
    templates = {
        n: chain_template(f"n{n}", labels[n], prereqs_by_node.get(n), first_state=first[n])
        for n in (1, 2, 3)
    }
    return lambda node: templates[node]


def run(template_for, events_by_node):
    queues = {
        node: [Event.make(label, node) for label in labels]
        for node, labels in events_by_node.items()
    }
    return PacketReconstructor(template_for).reconstruct(queues)


class TestCascading:
    """Fig. 3(a): e2 needs node2@s6, e4 needs node3@s9 (chained)."""

    def template_for(self):
        return make_templates({
            1: {"e2": [PrereqRule(2, "s6")]},
            2: {"e4": [PrereqRule(3, "s9")]},
        })

    def test_full_logs_yield_paper_flow(self):
        flow = run(self.template_for(), {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]})
        assert [e.etype for e in flow.events] == ["e1", "e3", "e5", "e6", "e4", "e2"]
        assert flow.inferred_events() == []

    def test_single_event_e2_recovers_everything(self):
        # "even when there is only one event e2 on node 1 and all other
        # events are lost, the transition algorithm can generate the correct
        # event flow and infer lost events."
        flow = run(self.template_for(), {1: ["e2"]})
        assert [e.etype for e in flow.events] == ["e1", "e3", "e5", "e6", "e4", "e2"]
        inferred = {e.etype for e in flow.inferred_events()}
        assert inferred == {"e1", "e3", "e4", "e5", "e6"}
        real = [e.etype for e in flow.real_events()]
        assert real == ["e2"]


class TestOneToMany:
    """Fig. 3(b): e4 on node 2 requires node1@s3 AND node3@s9."""

    def template_for(self):
        return make_templates({
            2: {"e4": [PrereqRule(1, "s3"), PrereqRule(3, "s9")]},
        })

    def test_constraints(self):
        flow = run(self.template_for(), {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]})
        types = [e.etype for e in flow.events]
        # e1,e2 and e5,e6 all precede e4
        for pre in ("e1", "e2", "e5", "e6"):
            assert types.index(pre) < types.index("e4")
        # happens-before confirms those orderings are determined
        i_e2 = flow.find("e2")[0]
        i_e6 = flow.find("e6")[0]
        i_e4 = flow.find("e4")[0]
        assert flow.happens_before(i_e2, i_e4)
        assert flow.happens_before(i_e6, i_e4)

    def test_e1_e5_ordering_undetermined(self):
        # "The ordering between e1 and e5 cannot be determined."
        flow = run(self.template_for(), {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]})
        i_e1 = flow.find("e1")[0]
        i_e5 = flow.find("e5")[0]
        assert not flow.order_determined(i_e1, i_e5)

    def test_lost_prerequisites_inferred_on_both_branches(self):
        flow = run(self.template_for(), {2: ["e3", "e4"]})
        types = [e.etype for e in flow.events]
        assert set(types) == {"e1", "e2", "e3", "e4", "e5", "e6"}
        inferred = {e.etype for e in flow.inferred_events()}
        assert inferred == {"e1", "e2", "e5", "e6"}


class TestManyToOne:
    """Fig. 3(c): e1 (node 1) and e5 (node 3) both require node2@s5."""

    def template_for(self):
        return make_templates({
            1: {"e1": [PrereqRule(2, "s5")]},
            3: {"e5": [PrereqRule(2, "s5")]},
        })

    def test_e3_precedes_both_branches(self):
        flow = run(self.template_for(), {1: ["e1", "e2"], 2: ["e3"], 3: ["e5", "e6"]})
        types = [e.etype for e in flow.events]
        i_e3 = flow.find("e3")[0]
        for later in ("e1", "e2", "e5", "e6"):
            j = flow.find(later)[0]
            assert types.index("e3") < types.index(later)
            assert flow.happens_before(i_e3, j)

    def test_e3_inferred_when_lost(self):
        flow = run(self.template_for(), {1: ["e1"], 3: ["e5"]})
        types = [e.etype for e in flow.events]
        assert types[0] == "e3"
        assert flow.entries[0].inferred
        # e3 is inferred exactly once even though both branches require it
        assert types.count("e3") == 1


class TestMixed:
    """Fig. 3(d): e1/e5 require node2@s5; e4 requires node1@s3 and node3@s9."""

    def template_for(self):
        return make_templates({
            1: {"e1": [PrereqRule(2, "s5")]},
            3: {"e5": [PrereqRule(2, "s5")]},
            2: {"e4": [PrereqRule(1, "s3"), PrereqRule(3, "s9")]},
        })

    def test_constraint_chain(self):
        flow = run(
            self.template_for(),
            {1: ["e1", "e2"], 2: ["e3", "e4"], 3: ["e5", "e6"]},
        )
        types = [e.etype for e in flow.events]
        assert sorted(types) == ["e1", "e2", "e3", "e4", "e5", "e6"]
        # e3 before e1 and e5; e2 and e6 before e4 (figure caption)
        assert types.index("e3") < types.index("e1")
        assert types.index("e3") < types.index("e5")
        assert types.index("e2") < types.index("e4")
        assert types.index("e6") < types.index("e4")

    def test_negotiation_with_lost_broadcast(self):
        # node 2's broadcast (e3) is lost; responses still order correctly
        flow = run(self.template_for(), {1: ["e1", "e2"], 2: ["e4"], 3: ["e5", "e6"]})
        types = [e.etype for e in flow.events]
        assert types.index("e3") < types.index("e1")
        assert types.index("e3") < types.index("e5")
        assert flow.entries[types.index("e3")].inferred
