"""Edge-size and degenerate-configuration robustness."""

import pytest

from repro.analysis.pipeline import evaluate
from repro.core.refill import Refill
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.simnet.network import Network
from repro.simnet.scenarios import small_network
from repro.fsm.templates import forwarder_template


class TestTinyNetworks:
    def test_two_node_network(self):
        # one sensor + the sink: single-hop everything
        result = Network(small_network(n_nodes=2, minutes=10)).run()
        assert len(result.truth.fates) > 0
        assert result.delivery_ratio() > 0.3

    def test_two_node_full_pipeline(self):
        result = evaluate(small_network(n_nodes=2, minutes=10))
        assert len(result.reports) > 0

    def test_zero_duration(self):
        result = Network(small_network(n_nodes=5, minutes=0)).run()
        assert result.truth.fates == {}


class TestDegenerateLogs:
    def test_empty_log_collection(self):
        flows = Refill().reconstruct({})
        assert flows == {}

    def test_logs_with_no_packet_events(self):
        logs = {1: NodeLog(1, [Event.make("parent_change", 1, old="2", new="3")])}
        assert Refill().reconstruct(logs) == {}

    def test_single_event_per_thousand_packets(self):
        template = forwarder_template(with_gen=False)
        logs = {
            1: NodeLog(1, [
                Event.make("trans", 1, src=1, dst=2, packet=PacketKey(1, i))
                for i in range(1000)
            ])
        }
        flows = Refill(template).reconstruct(logs)
        assert len(flows) == 1000
        assert all(len(f.entries) == 1 for f in flows.values())

    def test_very_long_single_packet_flow(self):
        # a 60-hop chain, complete logs: deep recursion territory
        template = forwarder_template(with_gen=False)
        pkt = PacketKey(1, 0)
        logs: dict[int, list] = {}
        for i in range(1, 61):
            a, b = i, i + 1
            logs.setdefault(a, []).append(Event.make("trans", a, src=a, dst=b, packet=pkt))
            logs.setdefault(b, []).append(Event.make("recv", b, src=a, dst=b, packet=pkt))
            logs.setdefault(a, []).append(Event.make("ack_recvd", a, src=a, dst=b, packet=pkt))
        flows = Refill(template).reconstruct(
            {n: NodeLog(n, evs) for n, evs in logs.items()}
        )
        flow = flows[pkt]
        assert len(flow.entries) == 180
        assert flow.omitted == []

    def test_sparse_long_chain_inferred(self):
        # only the last hop's recv survives on a 40-hop chain: the full
        # cascade of 40 transs + 39 recvs is inferred
        template = forwarder_template(with_gen=False)
        pkt = PacketKey(1, 0)
        # context needs hop hints: provide each hop's trans so upstream is
        # resolvable, drop everything else
        logs = {
            i: NodeLog(i, [Event.make("trans", i, src=i, dst=i + 1, packet=pkt)])
            for i in range(1, 41)
        }
        logs[41] = NodeLog(41, [Event.make("recv", 41, src=40, dst=41, packet=pkt)])
        flows = Refill(template).reconstruct(logs)
        flow = flows[pkt]
        inferred_recvs = [e for e in flow.inferred_events() if e.etype == "recv"]
        assert len(inferred_recvs) == 39
        assert flow.omitted == []
