"""Integration tests: query-flood + response-collection campaigns.

Composes the Fig. 3a cascade (query dissemination down the tree) with the
standard data-collection reconstruction (responses back up), asking the
operational question end to end: who heard the query, who answered, and
where did missing answers die?
"""

import pytest

from repro.core.diagnosis import classify_flow
from repro.core.refill import Refill
from repro.core.transition_algorithm import PacketReconstructor
from repro.events.merge import group_by_packet
from repro.fsm.templates import FORWARDED, HEARD, query_templates
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.query import QueryParams, run_query
from repro.simnet.scenarios import small_network


@pytest.fixture(scope="module")
def campaign():
    return run_query(QueryParams(scenario=small_network(n_nodes=20, seed=11, minutes=5)))


def query_flow(result, logs):
    grouped = group_by_packet(logs)
    events = grouped.get(result.query, {})
    reconstructor = PacketReconstructor(query_templates(result.sink), result.query)
    return reconstructor.reconstruct(events)


class TestGroundTruth:
    def test_flood_reaches_most_of_the_tree(self, campaign):
        assert len(campaign.heard) > 0.6 * len(campaign.network.topology.nodes)

    def test_answers_only_from_hearers(self, campaign):
        assert campaign.answered <= campaign.heard

    def test_responses_have_fates(self, campaign):
        truth = campaign.network.truth
        for packet in campaign.responses.values():
            assert packet in truth.fates

    def test_some_answers_delivered(self, campaign):
        assert len(campaign.delivered_answers()) > 0


class TestQueryReconstruction:
    def test_true_logs_recover_hearers_exactly(self, campaign):
        flow = query_flow(campaign, campaign.true_logs)
        reconstructed = {
            node for node in campaign.network.topology.nodes
            if flow.visited(node, HEARD) or flow.visited(node, FORWARDED)
        }
        assert reconstructed == set(campaign.heard)

    def test_lossy_logs_cascade_inference(self, campaign):
        # drop some logs entirely: deep surviving query_recv records must
        # re-derive the forwarding chain above them
        spec = LogLossSpec(node_loss_p=0.3, write_fail_p=0.1)
        lossy = collect_logs(campaign.true_logs, spec, seed=13)
        flow = query_flow(campaign, lossy)
        reconstructed = {
            node for node in campaign.network.topology.nodes
            if flow.visited(node, HEARD) or flow.visited(node, FORWARDED)
        }
        # never hallucinate hearers; the inferred chain stays within truth
        assert reconstructed <= set(campaign.heard)
        # cascade recovery: more hearers known than nodes whose own record
        # survived
        surviving_self_records = {
            node for node, log in lossy.items()
            if any(e.etype == "query_recv" and e.packet == campaign.query for e in log)
        }
        assert len(reconstructed) >= len(surviving_self_records)

    def test_all_fwds_inferred_when_only_recvs_survive(self, campaign):
        # drop every query_fwd record: each forwarder's action is re-derived
        # from its children's surviving query_recv prerequisites
        from repro.events.log import NodeLog

        logs = {
            node: NodeLog(node, [
                e for e in log
                if not (e.packet == campaign.query and e.etype == "query_fwd")
            ])
            for node, log in campaign.true_logs.items()
        }
        flow = query_flow(campaign, logs)
        inferred_fwd_nodes = {
            e.node for e in flow.inferred_events() if e.etype == "query_fwd"
        }
        # every node with a heard child forwarded; all of them come back
        parent = campaign.network.routing.parent
        true_forwarders = {
            parent[n] for n in campaign.heard if parent.get(n) is not None
        } & campaign.heard
        assert inferred_fwd_nodes == true_forwarders

    def test_single_deep_record_recovers_one_level_up(self, campaign):
        # with only one deep query_recv record, the direct parent's forward
        # is inferred; beyond that the upstream is honestly unknowable
        from repro.events.log import NodeLog

        parent = campaign.network.routing.parent
        deep = next(
            (n for n in sorted(campaign.heard) if parent.get(n) not in (None, campaign.sink)),
            None,
        )
        if deep is None:
            pytest.skip("tree too shallow in this seed")
        only = {
            deep: NodeLog(deep, [
                e for e in campaign.true_logs[deep]
                if e.packet == campaign.query and e.etype == "query_recv"
            ])
        }
        flow = query_flow(campaign, only)
        assert flow.visited(parent[deep], "FORWARDED")
        fwds = [e for e in flow.inferred_events() if e.etype == "query_fwd"]
        assert [e.node for e in fwds] == [parent[deep]]


class TestResponsesEndToEnd:
    def test_missing_answers_localized(self, campaign):
        refill = Refill()
        flows = refill.reconstruct(campaign.true_logs)
        bs = campaign.base_station
        lost_answer_nodes = campaign.answered - campaign.delivered_answers()
        for node in lost_answer_nodes:
            packet = campaign.responses[node]
            assert packet in flows
            report = classify_flow(flows[packet], delivery_node=bs)
            assert report.lost
            assert report.position is not None

    def test_delivered_answers_diagnosed_delivered(self, campaign):
        refill = Refill()
        flows = refill.reconstruct(campaign.true_logs)
        bs = campaign.base_station
        for node in campaign.delivered_answers():
            report = classify_flow(flows[campaign.responses[node]], delivery_node=bs)
            assert not report.lost
