"""Paper Table II — the four lossy-log cases plus the complete log.

These are the paper's worked examples (§III, §IV-C); the expected flows are
quoted verbatim from §IV-C.  REFILL must infer the bracketed lost events and
recover the correct ordering from individual, unsynchronized logs.
"""

import pytest

from repro.core.diagnosis import LossCause, classify_flow
from repro.core.refill import Refill, RefillOptions
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src, dst):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


def trans(a, b):
    return ev(EventType.TRANS, a, a, b)


def ack(a, b):
    return ev(EventType.ACK, a, a, b)


def recv(a, b):
    return ev(EventType.RECV, b, a, b)


@pytest.fixture()
def refill():
    # Table II has no generation events: origin starts with the packet.
    return Refill(forwarder_template(with_gen=False))


def flow_for(refill, logs):
    flows = refill.reconstruct(logs)
    assert set(flows) == {PKT}
    return flows[PKT]


class TestCompleteLog:
    def test_complete_log_reconstructs_with_no_inference(self, refill):
        logs = {
            1: NodeLog(1, [trans(1, 2), ack(1, 2)]),
            2: NodeLog(2, [recv(1, 2), trans(2, 3), ack(2, 3)]),
            3: NodeLog(3, [recv(2, 3)]),
        }
        flow = flow_for(refill, logs)
        assert flow.inferred_events() == []
        assert flow.omitted == []
        assert flow.labels() == [
            "1-2 trans",
            "1-2 recv",
            "1-2 ack recvd",
            "2-3 trans",
            "2-3 recv",
            "2-3 ack recvd",
        ]


class TestCase1:
    """Node 2's whole log is lost; only `1-2 trans` and `2-3 recv` survive."""

    def test_flow_matches_paper(self, refill):
        logs = {
            1: NodeLog(1, [trans(1, 2)]),
            3: NodeLog(3, [recv(2, 3)]),
        }
        flow = flow_for(refill, logs)
        assert flow.labels() == [
            "1-2 trans",
            "[1-2 recv]",
            "[2-3 trans]",
            "2-3 recv",
        ]

    def test_packet_not_considered_lost_on_node_1(self, refill):
        # Traditional trans-without-ack analysis would blame node 1; REFILL
        # proves the packet reached node 3.
        logs = {1: NodeLog(1, [trans(1, 2)]), 3: NodeLog(3, [recv(2, 3)])}
        flow = flow_for(refill, logs)
        report = classify_flow(flow)
        assert report.cause is LossCause.RECEIVED_LOSS
        assert report.position == 3


class TestCase2:
    """`1-2 trans, 1-2 ack recvd` on node 1; receiver's log lost."""

    def test_flow_matches_paper(self, refill):
        logs = {1: NodeLog(1, [trans(1, 2), ack(1, 2)])}
        flow = flow_for(refill, logs)
        assert flow.labels() == ["1-2 trans", "[1-2 recv]", "1-2 ack recvd"]

    def test_diagnosis_packet_lost_after_reaching_node_2(self, refill):
        logs = {1: NodeLog(1, [trans(1, 2), ack(1, 2)])}
        report = classify_flow(flow_for(refill, logs))
        assert report.cause is LossCause.ACKED_LOSS
        assert report.position == 2


class TestCase3:
    """Ack precedes trans on node 1: a retransmission episode was lost."""

    def test_flow_matches_paper(self, refill):
        logs = {1: NodeLog(1, [ack(1, 2), trans(1, 2)])}
        flow = flow_for(refill, logs)
        assert flow.labels() == [
            "[1-2 trans]",
            "[1-2 recv]",
            "1-2 ack recvd",
            "1-2 trans",
        ]

    def test_trans_ack_pair_does_not_mean_delivery(self, refill):
        # The pair exists, but ordering shows the packet is in flight again
        # after the ack: diagnosis must NOT report an acked delivery.
        logs = {1: NodeLog(1, [ack(1, 2), trans(1, 2)])}
        report = classify_flow(flow_for(refill, logs))
        assert report.cause is LossCause.UNKNOWN  # lost while 1 -> 2 in flight
        assert report.position == 1


class TestCase4:
    """Complete logs, but a routing loop hides a loss at node 2 (paper §III)."""

    LOGS = {
        1: [trans(1, 2), ack(1, 2), recv(3, 1), trans(1, 2), ack(1, 2)],
        2: [recv(1, 2), trans(2, 3), ack(2, 3), trans(2, 3)],
        3: [recv(2, 3), trans(3, 1), ack(3, 1)],
    }

    def expected_multiset(self):
        return sorted(
            [
                "1-2 trans", "1-2 recv", "1-2 ack recvd",
                "2-3 trans", "2-3 recv", "2-3 ack recvd",
                "3-1 trans", "3-1 recv", "3-1 ack recvd",
                "1-2 trans", "[1-2 recv]", "1-2 ack recvd",
                "2-3 trans",
            ]
        )

    def make_logs(self):
        return {n: NodeLog(n, evs) for n, evs in self.LOGS.items()}

    def test_flow_contains_paper_multiset(self, refill):
        flow = flow_for(refill, self.make_logs())
        assert sorted(flow.labels()) == self.expected_multiset()
        assert flow.omitted == []

    def test_second_recv_is_inferred(self, refill):
        flow = flow_for(refill, self.make_logs())
        inferred = flow.inferred_events()
        assert len(inferred) == 1
        assert inferred[0].etype == "recv" and inferred[0].node == 2

    def test_key_orderings_match_paper(self, refill):
        flow = flow_for(refill, self.make_logs())
        labels = flow.labels()
        # first episode starts exactly as in the paper
        assert labels[:3] == ["1-2 trans", "1-2 recv", "1-2 ack recvd"]
        # the loop episode is determined: second 1-2 trans happens before the
        # inferred [1-2 recv], which happens before the second ack, which is
        # followed (per node-2 log order) by the final failed 2-3 trans —
        # the tail of the paper's flow, expressed as happens-before facts.
        second_trans = flow.find("trans", node=1)[1]
        inferred_recv = [
            i for i, entry in enumerate(flow.entries)
            if entry.inferred and entry.event.etype == "recv"
        ][0]
        second_ack = flow.find("ack_recvd", node=1)[1]
        final_trans = flow.find("trans", node=2)[-1]
        assert flow.happens_before(second_trans, inferred_recv)
        assert flow.happens_before(inferred_recv, second_ack)
        assert flow.happens_before(inferred_recv, final_trans)

    def test_diagnosis_loss_on_2_to_3_link(self, refill):
        # "the packet is lost when node 2 is transmitting to node 3"
        flow = flow_for(refill, self.make_logs())
        report = classify_flow(flow)
        assert report.cause is LossCause.UNKNOWN
        assert report.position == 2
        assert report.anchor.etype == "trans" and report.anchor.dst == 3
