"""Integration tests: dissemination workload + REFILL reconstruction.

Exercises the 1-to-many (Peer.TARGETS) and many-to-1 prerequisite machinery
on a simulated protocol rather than the hand-built Fig. 3 graphs.
"""

import pytest

from repro.core.refill import Refill
from repro.core.transition_algorithm import PacketReconstructor
from repro.events.event import Event
from repro.events.log import NodeLog
from repro.events.merge import group_by_packet
from repro.events.packet import PacketKey
from repro.fsm.prerequisites import Peer, PrereqRule
from repro.fsm.templates import (
    ACKED_BACK,
    ADVERTISED,
    COMPLETE,
    UPDATED,
    dissemination_templates,
)
from repro.lognet.collector import collect_logs
from repro.lognet.loss import LogLossSpec
from repro.simnet.dissemination import DisseminationParams, run_dissemination


def reconstruct(template_for, logs):
    grouped = group_by_packet(logs)
    flows = {}
    for packet, by_node in grouped.items():
        flows[packet] = PacketReconstructor(template_for, packet).reconstruct(by_node)
    return flows


class TestPeerTargets:
    def test_targets_resolution(self):
        rule = PrereqRule(Peer.TARGETS, ACKED_BACK)
        event = Event.make("complete", 5, targets="1,3,9")
        assert rule.resolve_nodes(event) == (1, 3, 9)
        assert rule.resolve_node(event) is None  # multi-node

    def test_targets_missing_info(self):
        rule = PrereqRule(Peer.TARGETS, ACKED_BACK)
        assert rule.resolve_nodes(Event.make("complete", 5)) == ()

    def test_targets_tuple_form(self):
        rule = PrereqRule(Peer.TARGETS, ACKED_BACK)
        event = Event.make("complete", 5, targets=(2, 4))
        assert rule.resolve_nodes(event) == (2, 4)


class TestDisseminationReconstruction:
    def make_logs(self, seeder=10, targets=(1, 2)):
        update = PacketKey(seeder, 1)
        info = ",".join(str(t) for t in targets)
        logs = {
            seeder: NodeLog(seeder, [
                Event.make("adv", seeder, packet=update, targets=info),
                Event.make("complete", seeder, packet=update, targets=info),
            ]),
        }
        for t in targets:
            logs[t] = NodeLog(t, [
                Event.make("update_recv", t, src=seeder, dst=t, packet=update),
                Event.make("update_ack", t, src=t, dst=seeder, packet=update),
            ])
        return update, logs

    def test_complete_logs(self):
        update, logs = self.make_logs()
        flows = reconstruct(dissemination_templates(10), logs)
        flow = flows[update]
        assert flow.inferred_events() == []
        assert flow.omitted == []
        assert flow.final_states[10] == COMPLETE
        assert flow.final_states[1] == ACKED_BACK

    def test_complete_waits_for_all_targets(self):
        update, logs = self.make_logs()
        flows = reconstruct(dissemination_templates(10), logs)
        flow = flows[update]
        i_complete = flow.find("complete")[0]
        for t in (1, 2):
            i_ack = flow.find("update_ack", node=t)[0]
            assert flow.happens_before(i_ack, i_complete)

    def test_lost_receiver_log_fully_inferred(self):
        update, logs = self.make_logs()
        del logs[2]  # receiver 2's log never arrives
        flows = reconstruct(dissemination_templates(10), logs)
        flow = flows[update]
        inferred = {(e.etype, e.node) for e in flow.inferred_events()}
        assert ("update_recv", 2) in inferred
        assert ("update_ack", 2) in inferred
        assert flow.final_states[10] == COMPLETE

    def test_lost_adv_inferred_from_first_receive(self):
        update, logs = self.make_logs()
        logs[10] = NodeLog(10, [e for e in logs[10] if e.etype != "adv"])
        flows = reconstruct(dissemination_templates(10), logs)
        flow = flows[update]
        advs = [e for e in flow.inferred_events() if e.etype == "adv"]
        assert len(advs) == 1
        assert flow.final_states[10] == COMPLETE


class TestSimulatedCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_dissemination(DisseminationParams(n_nodes=16, seed=5, updates=3))

    def test_ground_truth_consistency(self, result):
        for update, ok in result.completed.items():
            if ok:
                assert result.applied[update] == frozenset(result.targets)

    def test_reconstruction_from_true_logs(self, result):
        flows = reconstruct(dissemination_templates(result.seeder), result.true_logs)
        for update, ok in result.completed.items():
            flow = flows[update]
            # everyone who truly applied shows as UPDATED-or-later
            for node in result.applied[update]:
                assert flow.visited(node, UPDATED)
            if ok:
                assert flow.final_states[result.seeder] == COMPLETE

    def test_reconstruction_from_lossy_logs(self, result):
        spec = LogLossSpec(write_fail_p=0.15, chunk_loss_p=0.1)
        lossy = collect_logs(result.true_logs, spec, seed=9)
        flows = reconstruct(dissemination_templates(result.seeder), lossy)
        for update, ok in result.completed.items():
            if not ok or update not in flows:
                continue
            flow = flows[update]
            if result.seeder not in flow.final_states:
                continue
            if flow.final_states[result.seeder] == COMPLETE:
                # a reconstructed completion implies every target confirmed:
                # they must all show as ACKED_BACK (real or inferred)
                for node in result.targets:
                    assert flow.visited(node, ACKED_BACK)

    def test_no_anomalies_on_true_logs(self, result):
        flows = reconstruct(dissemination_templates(result.seeder), result.true_logs)
        for flow in flows.values():
            assert flow.omitted == []
