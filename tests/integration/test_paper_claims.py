"""The paper's headline prose claims, as one regression checklist.

Each test quotes §V prose and asserts the corresponding measurable fact on
a shared scaled-CitySee evaluation.  (The per-figure benchmarks assert the
same shapes on bigger traces; this module is the fast regression net.)
"""

import pytest

from repro.analysis.accuracy import score_run
from repro.analysis.causes import cause_shares, sink_split
from repro.analysis.pipeline import evaluate
from repro.analysis.spatial import received_loss_map, top_loss_node
from repro.analysis.temporal import (
    concentration_gini,
    loss_scatter,
    per_node_loss_counts,
)
from repro.core.diagnosis import LossCause
from repro.simnet.scenarios import citysee


@pytest.fixture(scope="module")
def ev():
    return evaluate(citysee(n_nodes=100, days=4, seed=67))


class TestSectionVB1:
    def test_sources_spread_evenly(self, ev):
        """'packets generated at different nodes have a similar probability
        to get lost'"""
        points = loss_scatter(ev.reports, ev.est_loss_times, axis="source")
        nodes = [n for n in ev.sim.topology.nodes if n != ev.sink]
        counts = per_node_loss_counts(points, nodes)
        assert concentration_gini(counts) < 0.5

    def test_positions_concentrated(self, ev):
        """'the loss positions are on a small portion of nodes rather than
        evenly distributed'"""
        points = loss_scatter(ev.reports, ev.est_loss_times, axis="position")
        counts = per_node_loss_counts(points, ev.sim.topology.nodes)
        assert concentration_gini(counts) > 0.7

    def test_many_received_losses_on_sink(self, ev):
        """'there are a lot of received losses on the sink node ... many
        packets are lost even after they have arrived at the sink node'"""
        split = sink_split(ev.reports, ev.sink)
        assert split["received_sink"] + split["acked_sink"] > 30


class TestSectionVB2:
    def test_sink_has_largest_circle(self, ev):
        """Fig. 8: 'the sink node has a large number of received losses'"""
        points = received_loss_map(ev.reports, ev.sim.topology)
        assert top_loss_node(points).node == ev.sink


class TestSectionVC:
    def test_acked_and_received_are_top_causes(self, ev):
        """'The two most common causes are the acked and received losses.'"""
        shares = cause_shares(ev.reports)
        top2 = sorted(shares, key=lambda c: -shares[c])[:3]
        assert LossCause.ACKED_LOSS in top2
        assert LossCause.RECEIVED_LOSS in top2

    def test_acked_losses_elsewhere_are_rare(self, ev):
        """'0.6% are lost on other nodes' (acked losses off the sink)."""
        split = sink_split(ev.reports, ev.sink)
        assert split["acked_other"] < 6


class TestSectionVD3:
    def test_link_losses_are_rare_with_30_retransmissions(self, ev):
        """'with up to 30 retransmissions for each packet, packet losses due
        to low link quality become very low'"""
        shares = cause_shares(ev.reports)
        assert shares.get(LossCause.TIMEOUT_LOSS, 0.0) < 12

    def test_in_node_losses_exist_off_the_sink(self, ev):
        """'many packets are lost even though they are successfully received
        at some node' — the §V-D3 in-node story is network-wide."""
        split = sink_split(ev.reports, ev.sink)
        assert split["received_other"] > 0


class TestReconstructionQuality:
    def test_the_reproduction_headline(self, ev):
        """What the paper could only assert, measured against ground truth."""
        acc = score_run(
            ev.flows, ev.reports, ev.collected_logs, ev.sim.truth, sink=ev.sink
        )
        assert acc.coverage > 0.98
        assert acc.cause_accuracy > 0.95
        assert acc.position_accuracy > 0.85
        assert acc.event_precision > 0.95
        assert acc.event_recall > 0.8
        assert acc.ordering_accuracy > 0.9
