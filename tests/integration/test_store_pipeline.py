"""End-to-end through the disk format: simulate → save → load → analyze.

The CLI's workflow as a library round-trip: the diagnosis computed from
reloaded text logs must equal the diagnosis computed in memory.
"""

import pytest

from repro.analysis.causes import attribute_server_outages, cause_shares
from repro.analysis.pipeline import default_loss_spec, run_simulation
from repro.baselines.sink_view import SinkView
from repro.core.diagnosis import classify_flow
from repro.core.refill import Refill
from repro.events.store import StoreMetadata, load_store, save_store
from repro.lognet.collector import collect_logs
from repro.simnet.scenarios import citysee


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory):
    params = citysee(n_nodes=40, days=1, seed=59)
    sim = run_simulation(params)
    collected = collect_logs(
        sim.true_logs,
        default_loss_spec(sim),
        seed=3,
        perfect_clocks=frozenset({sim.base_station_node}),
    )
    metadata = StoreMetadata(
        sink=sim.sink,
        base_station=sim.base_station_node,
        gen_interval=params.gen_interval,
        outages=params.base_station.outages,
    )
    directory = tmp_path_factory.mktemp("pipeline") / "store"
    save_store(directory, collected, metadata)
    return sim, collected, load_store(directory)


def diagnose(logs, metadata):
    flows = Refill().reconstruct(logs)
    reports = {
        p: classify_flow(f, delivery_node=metadata.base_station)
        for p, f in flows.items()
    }
    bs_arrivals = [
        (e.packet, e.time)
        for e in logs.get(metadata.base_station, [])
        if e.etype == "recv" and e.packet is not None
    ]
    view = SinkView(bs_arrivals, metadata.gen_interval)
    est = {p: view.estimate_loss_time(p) for p in reports}
    return attribute_server_outages(
        reports, est,
        outages=metadata.outages,
        sink=metadata.sink,
        base_station=metadata.base_station,
    )


class TestStoreRoundTripPipeline:
    def test_logs_survive_the_disk(self, roundtrip):
        sim, collected, store = roundtrip
        assert store.corrupt_lines == {}
        assert set(store.logs) == set(collected)
        for node in collected:
            assert list(store.logs[node]) == list(collected[node])

    def test_diagnosis_identical_from_disk(self, roundtrip):
        sim, collected, store = roundtrip
        in_memory = diagnose(collected, store.metadata)
        from_disk = diagnose(store.logs, store.metadata)
        assert set(in_memory) == set(from_disk)
        for packet in in_memory:
            assert in_memory[packet].cause == from_disk[packet].cause
            assert in_memory[packet].position == from_disk[packet].position

    def test_shares_match(self, roundtrip):
        sim, collected, store = roundtrip
        a = cause_shares(diagnose(collected, store.metadata))
        b = cause_shares(diagnose(store.logs, store.metadata))
        assert a == b
