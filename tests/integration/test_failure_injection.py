"""Failure-injection tests: REFILL must degrade, never crash.

Collected logs in the field are not merely lossy — they can be duplicated
(retransmitted log chunks), reordered (collection races), truncated
mid-record, or reference nodes that never existed.  Every case must produce
a flow + diagnosis, possibly with anomalies recorded, never an exception.
"""

import pytest

from repro.core.diagnosis import classify_flow
from repro.core.refill import Refill
from repro.events.codec import decode_log
from repro.events.event import Event, EventType
from repro.events.log import NodeLog
from repro.events.packet import PacketKey
from repro.fsm.templates import forwarder_template

PKT = PacketKey(1, 0)


def ev(etype, node, src=None, dst=None):
    return Event.make(etype, node, src=src, dst=dst, packet=PKT)


@pytest.fixture()
def refill():
    return Refill(forwarder_template(with_gen=False))


def run(refill, logs):
    flows = refill.reconstruct({n: NodeLog(n, evs) for n, evs in logs.items()})
    for flow in flows.values():
        classify_flow(flow, delivery_node=999)
    return flows


class TestDuplicatedRecords:
    def test_duplicated_log_chunk(self, refill):
        # a retransmitted collection chunk duplicates three records
        base = [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]
        flows = run(refill, {1: base + base})
        flow = flows[PKT]
        # conservation still holds: every input event accounted for
        assert len(flow.real_events()) + len(flow.omitted) == 4

    def test_same_event_repeated_many_times(self, refill):
        flows = run(refill, {1: [ev("trans", 1, 1, 2)] * 10})
        assert len(flows[PKT].real_events()) + len(flows[PKT].omitted) == 10


class TestForeignAndMalformed:
    def test_event_referencing_unknown_nodes(self, refill):
        flows = run(refill, {
            3: [ev("recv", 3, 777, 3)],  # claimed sender 777 logged nothing
        })
        flow = flows[PKT]
        # the prerequisite drive creates an engine for 777 and infers
        assert 777 in flow.final_states

    def test_recv_with_self_as_sender(self, refill):
        flows = run(refill, {2: [ev("recv", 2, 2, 2)]})
        flow = flows[PKT]
        assert any("self-referential" in a for a in flow.anomalies)

    def test_pairless_pair_event(self, refill):
        # a recv whose src field was corrupted away
        flows = run(refill, {2: [Event.make("recv", 2, dst=2, packet=PKT)]})
        flow = flows[PKT]
        assert any("unresolvable" in a for a in flow.anomalies)

    def test_unknown_event_types_mixed_in(self, refill):
        flows = run(refill, {
            1: [ev("trans", 1, 1, 2), ev("corrupted_blob", 1), ev("ack_recvd", 1, 1, 2)],
        })
        flow = flows[PKT]
        assert [e.etype for e in flow.omitted] == ["corrupted_blob"]
        # the surrounding events still reconstruct
        assert "ack_recvd" in {e.etype for e in flow.real_events()}


class TestAdversarialOrderings:
    def test_fully_reversed_log(self, refill):
        events = [ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2),
                  ev("trans", 1, 1, 2), ev("ack_recvd", 1, 1, 2)]
        flows = run(refill, {1: list(reversed(events))})
        flow = flows[PKT]
        # still terminates with everything accounted for
        assert len(flow.real_events()) + len(flow.omitted) == 4

    def test_interleaved_unrelated_packets(self, refill):
        other = PacketKey(5, 9)
        logs = {
            1: [
                ev("trans", 1, 1, 2),
                Event.make("trans", 1, src=1, dst=2, packet=other),
                ev("ack_recvd", 1, 1, 2),
                Event.make("ack_recvd", 1, src=1, dst=2, packet=other),
            ],
        }
        flows = run(refill, logs)
        assert set(flows) == {PKT, other}
        for flow in flows.values():
            assert len(flow.real_events()) == 2

    def test_two_hundred_packet_stress(self, refill):
        logs = {1: [], 2: []}
        packets = [PacketKey(1, i) for i in range(200)]
        for p in packets:
            logs[1].append(Event.make("trans", 1, src=1, dst=2, packet=p))
            logs[2].append(Event.make("recv", 2, src=1, dst=2, packet=p))
        flows = run(refill, logs)
        assert len(flows) == 200


class TestCorruptedTextLogs:
    def test_decoder_rejects_garbage_line_cleanly(self):
        with pytest.raises(ValueError):
            decode_log(1, "node=1 type=recv\ngarbage without equals\n")

    def test_truncated_final_line_detected(self):
        with pytest.raises(ValueError):
            decode_log(1, "node=1 type=recv src=1 dst=2\nnode=1 typ")
