"""Unit tests for the shared utility helpers."""

import pytest

from repro.util.rng import RngStreams
from repro.util.stats import count_by, histogram, percentage_breakdown, time_buckets
from repro.util.tables import render_table


class TestRngStreams:
    def test_streams_deterministic(self):
        a = RngStreams(7).stream("mac")
        b = RngStreams(7).stream("mac")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        rng = RngStreams(7)
        mac = rng.stream("mac")
        _ = [mac.random() for _ in range(100)]  # burn draws
        links_after = rng.stream("links").random()
        links_fresh = RngStreams(7).stream("links").random()
        assert links_after == links_fresh

    def test_different_names_different_sequences(self):
        rng = RngStreams(7)
        assert rng.stream("a").random() != rng.stream("b").random()

    def test_stream_cached(self):
        rng = RngStreams(7)
        assert rng.stream("x") is rng.stream("x")

    def test_spawn_independent(self):
        parent = RngStreams(7)
        child1 = parent.spawn("scenario")
        child2 = RngStreams(7).spawn("scenario")
        assert child1.stream("gen").random() == child2.stream("gen").random()
        assert child1.stream("gen") is not parent.stream("gen")


class TestStats:
    def test_percentage_breakdown(self):
        shares = percentage_breakdown({"a": 3, "b": 1})
        assert shares["a"] == pytest.approx(75.0)
        assert sum(shares.values()) == pytest.approx(100.0)
        assert percentage_breakdown({"a": 0}) == {"a": 0.0}

    def test_histogram(self):
        counts = histogram([0.5, 1.5, 1.6, 2.5], [0, 1, 2, 3])
        assert counts == [1, 2, 1]
        assert histogram([], [0, 1]) == [0]

    def test_time_buckets(self):
        edges = time_buckets(0.0, 10.0, 2.5)
        assert edges == [0.0, 2.5, 5.0, 7.5, 10.0]
        with pytest.raises(ValueError):
            time_buckets(0, 10, 0)
        with pytest.raises(ValueError):
            time_buckets(10, 0, 1)

    def test_count_by(self):
        counts = count_by([1, 2, 3, 4], key=lambda x: x % 2)
        assert counts == {1: 2, 0: 2}


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["col", "n"], [("x", 1), ("longer", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        # all rows same width
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_float_formatting(self):
        text = render_table(["v"], [(1.23456,), (12345.6,)])
        assert "1.235" in text
        assert "12345.6" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
